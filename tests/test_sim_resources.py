"""Unit tests for Resource, Store and Container."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def proc(tag):
        req = res.request()
        yield req
        grants.append((tag, env.now))
        yield env.timeout(10)
        res.release(req)

    for tag in range(3):
        env.process(proc(tag))
    env.run()
    assert grants == [(0, 0), (1, 0), (2, 10)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def proc(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in range(4):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    def waiter():
        yield env.timeout(1)
        req = res.request()
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run(until=2)
    assert res.count == 1
    assert res.queue_length == 1


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Environment(), capacity=0)


def test_release_without_grant_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.process(proc())
    env.run()


def test_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        return res.queue_length

    env.process(holder())
    p = env.process(impatient())
    env.run()
    assert p.value == 0


# ------------------------------------------------------------------- Store
def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)

    def consumer():
        item = yield store.get()
        return (item, env.now)

    def producer():
        yield env.timeout(5)
        yield store.put("late")

    p = env.process(consumer())
    env.process(producer())
    env.run()
    assert p.value == ("late", 5)


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(env.now)
        yield store.put("b")  # blocks until 'a' consumed
        times.append(env.now)

    def consumer():
        yield env.timeout(4)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0, 4]


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Environment(), capacity=0)


# --------------------------------------------------------------- Container
def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=10)

    def proc():
        yield tank.get(5)
        yield tank.put(20)
        return tank.level

    p = env.process(proc())
    env.run()
    assert p.value == 25


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)

    def consumer():
        yield tank.get(10)
        return env.now

    def producer():
        yield env.timeout(3)
        yield tank.put(10)

    p = env.process(consumer())
    env.process(producer())
    env.run()
    assert p.value == 3


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)

    def producer():
        yield tank.put(5)
        return env.now

    def consumer():
        yield env.timeout(2)
        yield tank.get(5)

    p = env.process(producer())
    env.process(consumer())
    env.run()
    assert p.value == 2


def test_container_validates_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
