"""Unit tests for CSRMatrix and SparseDelta."""

import numpy as np
import pytest

from repro.ml.sparse import CSRMatrix, SparseDelta


def random_csr(rng, rows=20, cols=30, density=0.2):
    dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < density)
    return CSRMatrix.from_dense(dense), dense


# --------------------------------------------------------------- CSRMatrix
def test_from_dense_roundtrip():
    rng = np.random.default_rng(0)
    csr, dense = random_csr(rng)
    np.testing.assert_allclose(csr.to_dense(), dense)


def test_from_rows_builds_correctly():
    csr = CSRMatrix.from_rows(
        [(np.array([0, 2]), np.array([1.0, 2.0])),
         (np.array([], dtype=np.int32), np.array([])),
         (np.array([1]), np.array([3.0]))],
        n_cols=3,
    )
    expected = np.array([[1.0, 0, 2.0], [0, 0, 0], [0, 3.0, 0]])
    np.testing.assert_allclose(csr.to_dense(), expected)
    assert csr.nnz == 3


def test_matvec_matches_dense():
    rng = np.random.default_rng(1)
    csr, dense = random_csr(rng)
    w = rng.normal(size=30)
    np.testing.assert_allclose(csr.matvec(w), dense @ w)


def test_matvec_with_empty_rows():
    csr = CSRMatrix.from_dense(np.array([[0.0, 0], [1.0, 2.0], [0, 0]]))
    np.testing.assert_allclose(csr.matvec(np.array([1.0, 1.0])), [0, 3, 0])


def test_matvec_empty_matrix():
    csr = CSRMatrix.from_dense(np.zeros((3, 4)))
    np.testing.assert_allclose(csr.matvec(np.ones(4)), np.zeros(3))


def test_matvec_wrong_shape_rejected():
    csr = CSRMatrix.from_dense(np.eye(3))
    with pytest.raises(ValueError):
        csr.matvec(np.ones(4))


def test_rmatvec_on_support_matches_dense():
    rng = np.random.default_rng(2)
    csr, dense = random_csr(rng)
    r = rng.normal(size=20)
    delta = csr.rmatvec_on_support(r)
    np.testing.assert_allclose(delta.to_dense(), dense.T @ r, atol=1e-12)


def test_rmatvec_only_touches_support():
    csr = CSRMatrix.from_dense(np.array([[1.0, 0, 0], [0, 0, 2.0]]))
    delta = csr.rmatvec_on_support(np.array([1.0, 1.0]))
    assert set(delta.indices) == {0, 2}


def test_rmatvec_empty_matrix():
    csr = CSRMatrix.from_dense(np.zeros((2, 5)))
    delta = csr.rmatvec_on_support(np.ones(2))
    assert delta.nnz == 0 and delta.shape == (5,)


def test_row_slice():
    rng = np.random.default_rng(3)
    csr, dense = random_csr(rng)
    sub = csr.row_slice(5, 12)
    np.testing.assert_allclose(sub.to_dense(), dense[5:12])


def test_row_slice_clamps_bounds():
    csr = CSRMatrix.from_dense(np.eye(3))
    sub = csr.row_slice(-5, 100)
    assert sub.shape == (3, 3)


def test_csr_nbytes_positive_and_scales():
    rng = np.random.default_rng(4)
    small, _ = random_csr(rng, density=0.05)
    large, _ = random_csr(rng, density=0.5)
    assert 0 < small.nbytes < large.nbytes


def test_csr_density():
    csr = CSRMatrix.from_dense(np.eye(4))
    assert csr.density == pytest.approx(4 / 16)


def test_csr_validation_rejects_bad_indptr():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 2]), np.array([0], dtype=np.int32),
                  np.array([1.0]), (2, 3))


def test_csr_validation_rejects_out_of_range_column():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 1]), np.array([5], dtype=np.int32),
                  np.array([1.0]), (1, 3))


def test_csr_from_dense_requires_2d():
    with pytest.raises(ValueError):
        CSRMatrix.from_dense(np.zeros(5))


# -------------------------------------------------------------- SparseDelta
def test_delta_from_dense_and_back():
    dense = np.array([[0.0, 1.5], [2.5, 0.0]])
    delta = SparseDelta.from_dense(dense)
    assert delta.nnz == 2
    np.testing.assert_allclose(delta.to_dense(), dense)


def test_delta_from_dense_with_mask():
    dense = np.array([1.0, 2.0, 3.0])
    mask = np.array([True, False, True])
    delta = SparseDelta.from_dense(dense, mask=mask)
    np.testing.assert_allclose(delta.to_dense(), [1.0, 0.0, 3.0])


def test_delta_apply_to_accumulates():
    buf = np.ones((2, 2))
    delta = SparseDelta(np.array([0, 3]), np.array([1.0, -1.0]), (2, 2))
    delta.apply_to(buf)
    np.testing.assert_allclose(buf, [[2.0, 1.0], [1.0, 0.0]])


def test_delta_apply_shape_mismatch_rejected():
    delta = SparseDelta.empty((3,))
    with pytest.raises(ValueError):
        delta.apply_to(np.zeros(4))


def test_delta_merge_sums_duplicates():
    a = SparseDelta(np.array([0, 1]), np.array([1.0, 2.0]), (3,))
    b = SparseDelta(np.array([1, 2]), np.array([10.0, 20.0]), (3,))
    merged = a.merge(b)
    np.testing.assert_allclose(merged.to_dense(), [1.0, 12.0, 20.0])


def test_delta_merge_with_empty():
    a = SparseDelta(np.array([0]), np.array([1.0]), (3,))
    empty = SparseDelta.empty((3,))
    for merged in (a.merge(empty), empty.merge(a)):
        np.testing.assert_array_equal(merged.indices, a.indices)
        np.testing.assert_array_equal(merged.values, a.values)
        # Value objects: no aliasing even on the empty-side shortcut —
        # mutating the merge result must never reach back into an input.
        assert merged is not a
        assert not np.shares_memory(merged.values, a.values)
        assert not np.shares_memory(merged.indices, a.indices)


def test_delta_merge_shape_mismatch_rejected():
    a = SparseDelta.empty((3,))
    b = SparseDelta.empty((4,))
    with pytest.raises(ValueError):
        a.merge(b)


def test_delta_scale():
    delta = SparseDelta(np.array([1]), np.array([2.0]), (3,))
    np.testing.assert_allclose(delta.scale(-0.5).to_dense(), [0, -1.0, 0])


def test_delta_nbytes_wire_format():
    delta = SparseDelta(np.arange(10), np.ones(10), (100,))
    assert delta.nbytes == 10 * 12


def test_delta_norm():
    delta = SparseDelta(np.array([0, 1]), np.array([3.0, 4.0]), (2,))
    assert delta.norm() == pytest.approx(5.0)


def test_delta_validates_index_range():
    with pytest.raises(ValueError):
        SparseDelta(np.array([5]), np.array([1.0]), (3,))
    with pytest.raises(ValueError):
        SparseDelta(np.array([-1]), np.array([1.0]), (3,))


def test_delta_validates_lengths():
    with pytest.raises(ValueError):
        SparseDelta(np.array([0, 1]), np.array([1.0]), (3,))
