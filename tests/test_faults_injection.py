"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.faults import FAULT_PROFILES, FaultInjector, FaultProfile
from repro.faults.injector import FaultStats
from repro.faas import ActivationCrash, FaaSPlatform, FunctionSpec
from repro.sim import Environment, RandomStreams
from repro.storage import KVStore, MessageQueue, TransientStorageError


def make_injector(seed=0, **profile_kwargs):
    return FaultInjector(
        FaultProfile(**profile_kwargs), RandomStreams(seed=seed)
    )


# ----------------------------------------------------------------- profiles
def test_profile_rejects_bad_rates():
    with pytest.raises(ValueError):
        FaultProfile(crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultProfile(kv_error_rate=-0.1)


def test_profile_rejects_loss_plus_duplication_over_one():
    with pytest.raises(ValueError):
        FaultProfile(message_loss_rate=0.6, message_duplication_rate=0.6)


def test_profile_rejects_inverted_ranges():
    with pytest.raises(ValueError):
        FaultProfile(crash_window_s=(5.0, 1.0))
    with pytest.raises(ValueError):
        FaultProfile(straggler_factor=(0.5, 2.0))  # below 1.0 minimum


def test_profile_noop_detection():
    assert FaultProfile().is_noop()
    assert not FaultProfile(crash_rate=0.1).is_noop()
    for name, profile in FAULT_PROFILES.items():
        assert not profile.is_noop(), name


def test_presets_are_frozen():
    with pytest.raises(Exception):
        FAULT_PROFILES["crash"].crash_rate = 0.9


# ----------------------------------------------------------- injector draws
def test_same_seed_same_fault_schedule():
    a = make_injector(seed=7, crash_rate=0.5, straggler_rate=0.5)
    b = make_injector(seed=7, crash_rate=0.5, straggler_rate=0.5)
    seq_a = [(a.crash_delay("worker-0"), a.compute_scale("worker-0"))
             for _ in range(50)]
    seq_b = [(b.crash_delay("worker-0"), b.compute_scale("worker-0"))
             for _ in range(50)]
    assert seq_a == seq_b


def test_streams_are_independent():
    # Enabling the straggler model must not perturb the crash draws.
    crash_only = make_injector(seed=3, crash_rate=0.5)
    both = make_injector(seed=3, crash_rate=0.5, straggler_rate=0.9)
    for _ in range(50):
        assert crash_only.crash_delay("worker-0") == both.crash_delay("worker-0")
        both.compute_scale("worker-0")


def test_targeting_restricts_activation_faults():
    inj = make_injector(crash_rate=1.0, straggler_rate=1.0)
    assert inj.crash_delay("supervisor") is None
    assert inj.compute_scale("supervisor") == 1.0
    assert inj.crash_delay("worker-3") is not None
    assert inj.compute_scale("worker-5") > 1.0


def test_crash_delay_sampled_inside_window():
    inj = make_injector(crash_rate=1.0, crash_window_s=(2.0, 3.0))
    for _ in range(20):
        delay = inj.crash_delay("worker-0")
        assert 2.0 <= delay <= 3.0


def test_crash_delay_not_counted_until_it_fires():
    # The draw alone is not an injected fault: the handler may finish first.
    inj = make_injector(crash_rate=1.0)
    inj.crash_delay("worker-0")
    assert inj.stats.total_injected == 0


def test_coldstart_spike_certain():
    inj = make_injector(coldstart_spike_rate=1.0,
                        coldstart_spike_factor=(4.0, 4.0))
    assert inj.coldstart_multiplier() == 4.0
    assert inj.stats.injected["coldstart_spike"] == 1


def test_message_fate_loss_and_duplication():
    inj = make_injector(message_loss_rate=1.0)
    assert inj.message_fate("q") == "drop"
    assert inj.stats.injected["message_loss"] == 1
    inj2 = make_injector(message_duplication_rate=1.0)
    assert inj2.message_fate("q") == "duplicate"
    assert inj2.stats.injected["message_duplication"] == 1


def test_storage_should_fail_per_service_rates():
    inj = make_injector(kv_error_rate=1.0)
    assert inj.storage_should_fail("redis")
    assert inj.stats.injected["redis_error"] == 1
    # cos has rate 0 in this profile: never fails, never counted.
    assert not inj.storage_should_fail("cos")
    assert "cos_error" not in inj.stats.injected


def test_stats_summary_shape():
    stats = FaultStats()
    stats.note_injected("activation_crash", 3)
    stats.note_recovered("invoke_retry", 2)
    assert stats.summary() == {
        "fault.activation_crash": 3,
        "recovery.invoke_retry": 2,
    }
    assert stats.total_injected == 3 and stats.total_recovered == 2


# ------------------------------------------------------- platform injection
def make_platform(profile, seed=0):
    env = Environment()
    streams = RandomStreams(seed=seed)
    injector = FaultInjector(profile, streams)
    return env, FaaSPlatform(env, streams, faults=injector), injector


def test_injected_crash_fails_activation_and_bills_it():
    profile = FaultProfile(crash_rate=1.0, crash_window_s=(0.5, 1.0),
                           crash_targets=("worker",))
    env, platform, injector = make_platform(profile)

    def handler(ctx, payload):
        yield from ctx.compute(100.0)
        return "done"

    platform.register(FunctionSpec("worker-0", handler))
    act = platform.invoke("worker-0")
    env.run()
    with pytest.raises(ActivationCrash):
        act.result()
    assert act.record is not None and not act.record.ok
    assert act.record.billed_duration > 0
    assert injector.stats.injected["activation_crash"] == 1


def test_crashed_container_is_not_reused_warm():
    profile = FaultProfile(crash_rate=1.0, crash_window_s=(0.1, 0.2),
                           crash_targets=("worker",))
    env, platform, _ = make_platform(profile)

    def handler(ctx, payload):
        yield from ctx.sleep(5.0)

    platform.register(FunctionSpec("worker-0", handler))
    first = platform.invoke("worker-0")
    env.run()
    second = platform.invoke("worker-0")
    env.run()
    assert first.cold and second.cold  # no warm pool entry survived the crash


def test_handler_finishing_before_crash_point_is_unaffected():
    profile = FaultProfile(crash_rate=1.0, crash_window_s=(50.0, 60.0),
                           crash_targets=("worker",))
    env, platform, injector = make_platform(profile)

    def handler(ctx, payload):
        yield from ctx.sleep(0.1)
        return "ok"

    platform.register(FunctionSpec("worker-0", handler))
    act = platform.invoke("worker-0")
    env.run()
    assert act.result() == "ok" and act.record.ok
    assert injector.stats.total_injected == 0


def test_straggler_scales_compute_time():
    profile = FaultProfile(straggler_rate=1.0, straggler_factor=(3.0, 3.0),
                           straggler_targets=("worker",))
    env, platform, injector = make_platform(profile)
    durations = {}

    def handler(ctx, payload):
        start = ctx.now
        yield from ctx.compute(2.0)
        durations[ctx.function] = ctx.now - start

    platform.register(FunctionSpec("worker-0", handler))
    platform.register(FunctionSpec("supervisor", handler))
    platform.invoke("worker-0")
    platform.invoke("supervisor")
    env.run()
    assert durations["worker-0"] == pytest.approx(3 * durations["supervisor"])
    assert injector.stats.injected["straggler"] == 1


def test_coldstart_spike_slows_cold_dispatch_only():
    spiked = FaultProfile(coldstart_spike_rate=1.0,
                          coldstart_spike_factor=(10.0, 10.0))

    def run_one(profile):
        if profile is not None:
            env, platform, _ = make_platform(profile)
        else:
            env = Environment()
            platform = FaaSPlatform(env, RandomStreams(seed=0))
        entered = {}

        def handler(ctx, payload):
            entered["at"] = ctx.now
            yield from ctx.sleep(0.0)

        platform.register(FunctionSpec("f", handler))
        act = platform.invoke("f")
        env.run()
        return entered["at"] - act.started_at  # the dispatch latency

    assert run_one(spiked) > run_one(None) * 5


# --------------------------------------------------------- storage injection
def test_kv_errors_exhaust_retries_and_surface():
    env = Environment()
    streams = RandomStreams(seed=0)
    injector = FaultInjector(
        FaultProfile(kv_error_rate=1.0, max_storage_retries=2), streams
    )
    kv = KVStore(env, streams, faults=injector)

    def writer():
        yield from kv.set("k", b"x" * 100)

    env.process(writer())
    with pytest.raises(TransientStorageError):
        env.run()
    # 1 initial failure + 2 retries, all failed.
    assert injector.stats.injected["redis_error"] == 3
    assert injector.stats.recovered["storage_retry"] == 2


class ScriptedFaults:
    """Injector stand-in with a scripted storage failure sequence."""

    def __init__(self, fates, max_retries=4):
        self.profile = FaultProfile(kv_error_rate=0.5,
                                    max_storage_retries=max_retries)
        self.stats = FaultStats()
        self._fates = list(fates)

    def storage_should_fail(self, service):
        fail = self._fates.pop(0) if self._fates else False
        if fail:
            self.stats.note_injected(f"{service}_error")
        return fail


def test_kv_transient_error_recovers_after_retry():
    env = Environment()
    streams = RandomStreams(seed=0)
    faults = ScriptedFaults([True, True, False])
    kv = KVStore(env, streams, faults=faults)

    def roundtrip():
        yield from kv.set("k", 123)
        value = yield from kv.get("k")
        return value

    proc = env.process(roundtrip())
    env.run()
    assert proc.ok and proc.value == 123
    assert faults.stats.injected["redis_error"] == 2
    assert faults.stats.recovered["storage_retry"] == 2


def test_storage_retry_takes_simulated_time():
    env = Environment()
    streams = RandomStreams(seed=0)
    clean_env = Environment()
    clean = KVStore(clean_env, RandomStreams(seed=0))
    flaky = KVStore(env, streams, faults=ScriptedFaults([True, False]))

    def write(kv):
        yield from kv.set("k", b"x" * 1000)

    env.process(write(flaky))
    clean_env.process(write(clean))
    env.run()
    clean_env.run()
    assert env.now > clean_env.now  # failed attempt + backoff cost time


# ------------------------------------------------------------- mq injection
def make_mq(profile, seed=0):
    env = Environment()
    streams = RandomStreams(seed=seed)
    injector = FaultInjector(profile, streams)
    return env, MessageQueue(env, streams, faults=injector), injector


def test_message_loss_drops_published_message():
    env, mq, injector = make_mq(FaultProfile(message_loss_rate=1.0))

    def publisher():
        yield from mq.publish("q", {"x": 1})

    env.process(publisher())
    env.run()
    assert mq.depth("q") == 0
    assert injector.stats.injected["message_loss"] == 1


def test_message_duplication_delivers_twice():
    env, mq, injector = make_mq(FaultProfile(message_duplication_rate=1.0))

    def publisher():
        yield from mq.publish("q", {"x": 1})

    env.process(publisher())
    env.run()
    assert mq.depth("q") == 2
    assert injector.stats.injected["message_duplication"] == 1


def test_consume_with_timeout_returns_none_when_empty():
    env = Environment()
    mq = MessageQueue(env, RandomStreams(seed=0))

    def consumer():
        message = yield from mq.consume_with_timeout("q", 2.0)
        return message

    proc = env.process(consumer())
    env.run()
    assert proc.ok and proc.value is None
    assert env.now >= 2.0


def test_consume_with_timeout_gets_message_in_time():
    env = Environment()
    mq = MessageQueue(env, RandomStreams(seed=0))

    def publisher():
        yield env.timeout(0.5)
        yield from mq.publish("q", "hello")

    def consumer():
        message = yield from mq.consume_with_timeout("q", 10.0)
        return message

    env.process(publisher())
    proc = env.process(consumer())
    env.run()
    assert proc.ok and proc.value == "hello"


def test_timed_out_get_does_not_steal_later_messages():
    # After a consumer times out, a message published later must go to the
    # next consumer, not vanish into the abandoned get.
    env = Environment()
    mq = MessageQueue(env, RandomStreams(seed=0))

    def impatient():
        message = yield from mq.consume_with_timeout("q", 1.0)
        return message

    def publisher():
        yield env.timeout(2.0)
        yield from mq.publish("q", "late")

    def patient():
        yield env.timeout(1.5)
        message = yield from mq.consume("q")
        return message

    first = env.process(impatient())
    env.process(publisher())
    second = env.process(patient())
    env.run()
    assert first.ok and first.value is None
    assert second.ok and second.value == "late"
