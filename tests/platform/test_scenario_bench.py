"""End-to-end scenario + benchmark document + CLI round trips."""

import json

import pytest

from repro.bench.runner import compare
from repro.platform import ScenarioConfig, run_isolated_baseline, run_scenario
from repro.platform.arrivals import JobSizeProfile, TrafficProfile
from repro.platform.bench import metrics_checksum, run_platform_suite
from repro.platform.cli import main as platform_main
from repro.platform.scenario import percentile

SMALL = ScenarioConfig(
    seed=5, n_tenants=5, horizon_s=1200.0, pool_concurrency=5,
    traffic=TrafficProfile(mean_rate_per_h=15.0),
    sizes=JobSizeProfile(max_workers=3, min_steps=3, max_steps=10),
)


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 11)]
    assert percentile(values, 50.0) == 5.0
    assert percentile(values, 95.0) == 10.0
    assert percentile(values, 100.0) == 10.0
    assert percentile([3.0], 95.0) == 3.0
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)


def test_scenario_completes_all_jobs_with_sane_metrics():
    result = run_scenario(SMALL)
    metrics = result.metrics
    assert metrics["jobs"] >= 20
    assert all(r.done for r in result.records)
    assert metrics["queue_wait_p95_s"] >= metrics["queue_wait_p50_s"] >= 0.0
    assert 0.0 < metrics["cold_fraction"] <= 1.0
    assert metrics["jobs_per_hour"] > 0.0
    # Billing identity holds inside the scenario too.
    assert metrics["attributed_fraction"] == pytest.approx(1.0)
    assert metrics["billing_abs_error_usd"] < 1e-9
    assert metrics["unattributed_cost_usd"] == 0.0


def test_scenario_invoices_cover_every_tenant_with_jobs():
    result = run_scenario(SMALL)
    billed = {t for t, inv in result.report.invoices.items() if inv.jobs > 0}
    submitted = {r.spec.tenant_id for r in result.records}
    assert billed == submitted


def test_sharing_beats_isolation_on_cost_per_job():
    shared = run_scenario(SMALL).metrics["cost_per_job_shared_usd"]
    isolated = run_isolated_baseline(SMALL)["cost_per_job_isolated_usd"]
    assert shared < isolated


def test_default_scenario_meets_the_benchmark_floor():
    """The committed benchmark config must exercise platform scale:
    >= 200 jobs from >= 20 tenants (the acceptance floor)."""
    config = ScenarioConfig()
    assert config.n_tenants >= 20
    result = run_scenario(config)
    assert result.metrics["jobs"] >= 200
    assert result.metrics["queue_wait_p95_s"] > 0.0


def test_platform_suite_document_schema_and_stability():
    doc = run_platform_suite(name="t", quick=True, config=SMALL)
    assert {e["op"] for e in doc["ops"]} == {
        "platform.shared_diurnal", "platform.isolated_baseline"
    }
    assert all(e["portable_checksum"] for e in doc["ops"])
    section = doc["platform"]
    assert section["digest"]
    assert section["comparison"]["savings_pct"] > 0.0
    for key in ("jobs", "jobs_per_hour", "queue_wait_p95_s",
                "cost_per_job_shared_usd"):
        assert key in section["metrics"]
    # Self-compare must pass the CI gate mechanics unchanged.
    result = compare(doc, doc, min_speedup=0.0, portable_only=True)
    assert result.ok
    # The checksum is a pure function of digest+metrics: recompute it.
    shared_entry = next(
        e for e in doc["ops"] if e["op"] == "platform.shared_diurnal"
    )
    rerun = run_scenario(SMALL)
    assert shared_entry["checksum"] == metrics_checksum(
        rerun.metrics, rerun.digest
    )


def test_cli_writes_comparable_documents(tmp_path, capsys):
    assert platform_main(
        ["--quick", "--name", "a", "--out", str(tmp_path), "--seed", "5"]
    ) == 0
    # CLI defaults run the full-size default scenario; use --compare on
    # the just-written file against itself for the gate round trip.
    path = tmp_path / "BENCH_a.json"
    assert path.exists()
    doc = json.loads(path.read_text())
    assert doc["name"] == "a"
    assert doc["quick"] is True
    assert platform_main(["--compare", str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_bench_cli_forwards_platform_subcommand(tmp_path, capsys):
    """``python -m repro.bench platform ...`` is the platform CLI."""
    from repro.bench.cli import main as bench_main

    doc = {"name": "x", "quick": True, "schema_version": 1, "ops": []}
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(doc))
    assert bench_main(["platform", "--compare", str(path), str(path)]) == 0
    assert "PASS" in capsys.readouterr().out
