"""Billing rollup: idle intervals, invoices, and the warm-interleave
attribution regression (every billed GB-s lands on exactly one invoice)."""

import pytest

from repro.faas.billing import ActivationRecord, FaaSBilling
from repro.platform import (
    FairShareScheduler,
    JobQueue,
    JobRecord,
    JobSpec,
    PoolEconomics,
    SharedPool,
    Tenant,
    build_invoices,
    container_idle_intervals,
)
from repro.sim import Environment, RandomStreams
from repro.storage import KVStore
from repro.trace import CostLedger, Tracer

TOL = 1e-9


# -- idle interval reconstruction ------------------------------------------
def test_idle_interval_closed_by_next_acquire():
    log = [
        (0.0, "provision", "f", 0, 0),
        (5.0, "release", "f", 0, 0),
        (8.0, "acquire", "f", 0, 1),
        (12.0, "release", "f", 0, 1),
    ]
    intervals = container_idle_intervals(log, keep_alive_s=100.0, horizon_s=20.0)
    assert intervals == [("f", 0, 5.0, 8.0, 0), ("f", 0, 12.0, 20.0, 1)]


def test_idle_interval_clipped_at_keep_alive_expiry():
    log = [(0.0, "provision", "f", 0, 0), (1.0, "release", "f", 0, 0)]
    intervals = container_idle_intervals(log, keep_alive_s=3.0, horizon_s=100.0)
    assert intervals == [("f", 0, 1.0, 4.0, 0)]
    # ... even when a reclaim arrives later than expiry would have.
    log.append((50.0, "reclaim", "f", 0, -1))
    intervals = container_idle_intervals(log, keep_alive_s=3.0, horizon_s=100.0)
    assert intervals == [("f", 0, 1.0, 4.0, 0)]


def test_idle_interval_closed_early_by_reclaim():
    log = [
        (0.0, "provision", "f", 0, 0),
        (1.0, "release", "f", 0, 0),
        (2.5, "reclaim", "f", 0, -1),
    ]
    intervals = container_idle_intervals(log, keep_alive_s=100.0, horizon_s=50.0)
    assert intervals == [("f", 0, 1.0, 2.5, 0)]


def test_lost_container_accrues_no_idle():
    log = [(0.0, "provision", "f", 0, 0), (4.0, "lost", "f", 0, 0)]
    assert container_idle_intervals(log, 100.0, 50.0) == []


# -- invoice identity ------------------------------------------------------
def _record(aid, start, end, pool="pool", mb=2048, cid=0):
    return ActivationRecord(
        function="trainer-2048", activation_id=aid, memory_mb=mb,
        start=start, end=end, cold=(aid == 0), ok=True, pool=pool,
        container_id=cid,
    )


def test_invoices_attribute_every_billed_gb_second():
    billing = FaaSBilling()
    billing.add(_record(0, 0.0, 2.0))
    billing.add(_record(1, 3.0, 5.5))
    billing.add(_record(2, 6.0, 7.0))
    owners = {
        ("pool", 0): ("t-a", "t-a/j0"),
        ("pool", 1): ("t-b", "t-b/j0"),
        ("pool", 2): ("t-a", "t-a/j1"),
    }
    report = build_invoices(
        billing, [], owners, pool_label="pool", keep_alive_s=60.0,
        horizon_s=10.0, tenants=["t-a", "t-b"],
    )
    checks = report.reconcile()
    assert checks["abs_error"] < TOL
    assert checks["attributed_fraction"] == pytest.approx(1.0)
    assert report.unattributed_cost == 0.0
    assert report.invoices["t-a"].jobs == 2
    assert report.invoices["t-b"].jobs == 1
    total = sum(i.active_cost for i in report.invoices.values())
    assert total == pytest.approx(billing.total_cost(), abs=TOL)


def test_unowned_activation_is_visible_residue_not_silently_spread():
    billing = FaaSBilling()
    billing.add(_record(0, 0.0, 2.0))
    billing.add(_record(1, 3.0, 5.0))  # nobody claims this one
    owners = {("pool", 0): ("t-a", "t-a/j0")}
    report = build_invoices(
        billing, [], owners, pool_label="pool", keep_alive_s=60.0,
        horizon_s=10.0, tenants=["t-a"],
    )
    checks = report.reconcile()
    assert report.unattributed_cost > 0.0
    assert checks["attributed_fraction"] < 1.0
    assert checks["abs_error"] < TOL  # the identity still holds


def test_idle_charged_to_releasing_tenant_at_discounted_rate():
    billing = FaaSBilling()
    billing.add(_record(0, 0.0, 2.0, cid=0))
    log = [
        (0.0, "provision", "trainer-2048", 0, 0),
        (2.0, "release", "trainer-2048", 0, 0),
        (6.0, "reclaim", "trainer-2048", 0, -1),
    ]
    economics = PoolEconomics(idle_rate_fraction=0.5)
    report = build_invoices(
        billing, log, {("pool", 0): ("t-a", "t-a/j0")}, pool_label="pool",
        keep_alive_s=60.0, horizon_s=10.0, economics=economics,
        tenants=["t-a"],
    )
    invoice = report.invoices["t-a"]
    # 4 idle seconds at 2 GB, half the active rate.
    assert invoice.idle_gb_s == pytest.approx(8.0)
    assert invoice.idle_cost == pytest.approx(
        8.0 * economics.rate_per_gb_s * 0.5
    )
    assert invoice.total_cost == pytest.approx(
        invoice.active_cost + invoice.idle_cost
    )


# -- the interleave regression (satellite bugfix) --------------------------
def run_interleaved_pool(label_b="pool-b"):
    """Two pools, one consolidated bill + tracer, interleaved warm reuse."""
    env = Environment()
    streams = RandomStreams(seed=0)
    billing = FaaSBilling()
    tracer = Tracer()
    kv = KVStore(env, streams)
    pools = []
    for label in ("pool-a", label_b):
        pool = SharedPool(
            env, streams.fork(len(pools)), kv, concurrency=2,
            memory_grades_mb=(2048,), keep_alive_s=600.0,
            billing=billing, tracer=tracer, label=label,
        )
        scheduler = FairShareScheduler(
            env, pool, queue=JobQueue(), tenants=[Tenant("t-a"), Tenant("t-b")],
        )
        pools.append((pool, scheduler))

    def driver():
        for i, (pool, scheduler) in enumerate(pools):
            tenant = "t-a" if i == 0 else "t-b"
            scheduler.submit(JobRecord(
                spec=JobSpec(f"{tenant}/j{i}", tenant, 1, 3, 0.2), ordinal=i
            ))
            yield env.timeout(10.0)

    env.process(driver())
    env.run()
    return billing, tracer


def test_two_tenants_interleaved_on_one_bill_fully_attributed():
    """Distinct pool labels: the ledger joins every record to its span."""
    billing, tracer = run_interleaved_pool()
    ledger = CostLedger.from_trace(tracer, billing)
    checks = ledger.reconcile()
    assert checks["attributed_fraction"] == pytest.approx(1.0)
    assert checks["abs_error"] < TOL


def test_colliding_pool_labels_refuse_the_join_instead_of_misbilling():
    """Regression: same label on two pools used to silently decompose a
    record against the *wrong* pool's span (the misattributed time
    vanished into billing.rounding while reconcile still said 1.0).
    Now the ambiguous join is refused and the residue is visible."""
    billing, tracer = run_interleaved_pool(label_b="pool-a")
    ledger = CostLedger.from_trace(tracer, billing)
    checks = ledger.reconcile()
    assert checks["attributed_fraction"] == pytest.approx(0.0)
    assert checks["abs_error"] < TOL  # dollars still conserved


def test_warm_interleave_on_one_shared_pool_keeps_identity():
    """Two tenants alternating on the same warm container of one pool:
    100% of billed GB-s lands on tenant invoices, zero residue."""
    env = Environment()
    streams = RandomStreams(seed=3)
    kv = KVStore(env, streams)
    pool = SharedPool(env, streams, kv, concurrency=1,
                      memory_grades_mb=(2048,), keep_alive_s=600.0)
    scheduler = FairShareScheduler(
        env, pool, tenants=[Tenant("t-a"), Tenant("t-b")],
    )
    records = [
        JobRecord(spec=JobSpec(f"{t}/j{i}", t, 1, 2, 0.1), ordinal=i)
        for i, t in enumerate(["t-a", "t-b", "t-a", "t-b"])
    ]

    def driver():
        for record in records:
            scheduler.submit(record)
            yield env.timeout(5.0)

    env.process(driver())
    env.run()
    assert pool.warm_activations == 3  # container reused across tenants
    report = build_invoices(
        pool.platform.billing, pool.platform.container_log, pool.owners,
        pool_label="pool", keep_alive_s=600.0, horizon_s=env.now,
        tenants=["t-a", "t-b"],
    )
    checks = report.reconcile()
    assert checks["attributed_fraction"] == pytest.approx(1.0)
    assert checks["abs_error"] < TOL
    assert report.unattributed_cost == 0.0
