"""Unit tests: tenants, job specs, arrival generation, the job queue."""

import pytest

from repro.platform import (
    JobQueue,
    JobRecord,
    JobSizeProfile,
    JobSpec,
    Tenant,
    TrafficProfile,
    generate_arrivals,
    make_tenant_fleet,
)
from repro.platform.arrivals import diurnal_rate
from repro.sim import RandomStreams


# -- tenants --------------------------------------------------------------
def test_tenant_share_weight_combines_class_and_weight():
    assert Tenant("a", priority="batch").share_weight == 1.0
    assert Tenant("a", priority="premium").share_weight == 16.0
    assert Tenant("a", priority="standard", weight=2.0).share_weight == 8.0


def test_tenant_rejects_unknown_priority_and_bad_weight():
    with pytest.raises(ValueError):
        Tenant("a", priority="platinum")
    with pytest.raises(ValueError):
        Tenant("a", weight=0.0)


def test_fleet_is_deterministic_with_mixed_classes():
    fleet = make_tenant_fleet(24)
    assert len(fleet) == 24
    assert fleet == make_tenant_fleet(24)
    classes = {t.priority for t in fleet}
    assert classes == {"batch", "standard", "premium"}
    assert len({t.tenant_id for t in fleet}) == 24


# -- job specs ------------------------------------------------------------
def test_jobspec_validate_rejects_unadmittable_width():
    spec = JobSpec("j", "t", n_workers=8, steps=10, step_cpu_s=0.1)
    with pytest.raises(ValueError, match="never be admitted"):
        spec.validate(max_concurrency=4)
    spec.validate(max_concurrency=8)  # fits exactly: fine


def test_jobspec_demand_is_total_cpu_seconds():
    spec = JobSpec("j", "t", n_workers=3, steps=10, step_cpu_s=0.5)
    assert spec.demand == pytest.approx(15.0)


def test_jobrecord_lifecycle_properties():
    record = JobRecord(spec=JobSpec("j", "t", 1, 1, 0.1), ordinal=0)
    with pytest.raises(ValueError):
        _ = record.queue_wait
    record.submitted_at = 1.0
    record.started_at = 3.5
    record.finished_at = 10.0
    assert record.queue_wait == pytest.approx(2.5)
    assert record.run_time == pytest.approx(6.5)
    assert record.done


# -- arrivals -------------------------------------------------------------
def test_arrivals_deterministic_and_sorted():
    tenants = make_tenant_fleet(6)
    profile, sizes = TrafficProfile(), JobSizeProfile()
    a = generate_arrivals(tenants, profile, sizes, RandomStreams(seed=7), 3600.0)
    b = generate_arrivals(tenants, profile, sizes, RandomStreams(seed=7), 3600.0)
    assert a == b
    times = [t for t, _ in a]
    assert times == sorted(times)
    assert all(0.0 <= t < 3600.0 for t in times)


def test_arrivals_per_tenant_streams_are_independent():
    """Adding a tenant must not perturb existing tenants' schedules."""
    profile, sizes = TrafficProfile(), JobSizeProfile()
    small = generate_arrivals(
        make_tenant_fleet(3), profile, sizes, RandomStreams(seed=7), 3600.0
    )
    large = generate_arrivals(
        make_tenant_fleet(5), profile, sizes, RandomStreams(seed=7), 3600.0
    )
    small_ids = {spec.tenant_id for _, spec in small}
    kept = [(t, s) for t, s in large if s.tenant_id in small_ids]
    assert kept == small


def test_diurnal_rate_peaks_at_peak_time_and_bursts_multiply():
    profile = TrafficProfile(
        mean_rate_per_h=6.0, diurnal_amplitude=0.5, peak_time_s=1000.0,
        period_s=4000.0, burst_multiplier=5.0,
    )
    base = 6.0 / 3600.0
    assert diurnal_rate(profile, 1000.0, []) == pytest.approx(base * 1.5)
    assert diurnal_rate(profile, 3000.0, []) == pytest.approx(base * 0.5)
    in_burst = diurnal_rate(profile, 1000.0, [(900.0, 1100.0)])
    assert in_burst == pytest.approx(base * 1.5 * 5.0)


def test_arrival_job_ids_are_unique():
    arrivals = generate_arrivals(
        make_tenant_fleet(4), TrafficProfile(), JobSizeProfile(),
        RandomStreams(seed=1), 3600.0,
    )
    ids = [spec.job_id for _, spec in arrivals]
    assert len(ids) == len(set(ids))


# -- the queue ------------------------------------------------------------
def _record(tenant, n):
    return JobRecord(spec=JobSpec(f"{tenant}/j{n}", tenant, 1, 1, 0.1), ordinal=n)


def test_queue_per_tenant_fifo_and_sorted_heads():
    queue = JobQueue()
    queue.push(_record("b", 0))
    queue.push(_record("a", 1))
    queue.push(_record("b", 2))
    assert len(queue) == 3
    heads = list(queue.heads())
    assert [t for t, _ in heads] == ["a", "b"]  # sorted, not insertion order
    assert heads[1][1].ordinal == 0  # b's FIFO head is its first push
    assert queue.pop_head("b").ordinal == 0
    assert queue.pop_head("b").ordinal == 2
    assert queue.backlog("b") == 0
    assert queue.tenants_waiting() == ["a"]
