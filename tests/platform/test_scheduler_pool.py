"""Scheduler + shared-pool behaviour under controlled submission patterns."""

import pytest

from repro.platform import (
    FairShareScheduler,
    JobQueue,
    JobRecord,
    JobSpec,
    SharedPool,
    Tenant,
)
from repro.sim import Environment, Monitor, RandomStreams
from repro.storage import KVStore


def make_world(concurrency=4, scale_to_zero_after_s=0.0, keep_alive_s=60.0,
               tenants=()):
    env = Environment()
    streams = RandomStreams(seed=0)
    kv = KVStore(env, streams)
    pool = SharedPool(
        env, streams, kv,
        concurrency=concurrency,
        memory_grades_mb=(2048,),
        keep_alive_s=keep_alive_s,
        scale_to_zero_after_s=scale_to_zero_after_s,
        monitor=Monitor(trace=True),
        label="pool",
    )
    scheduler = FairShareScheduler(
        env, pool, queue=JobQueue(), tenants=tenants, max_skips=3,
        monitor=pool.monitor,
    )
    return env, pool, scheduler


def spec(job_id, tenant, workers=1, steps=4, cpu=0.2):
    return JobSpec(job_id, tenant, n_workers=workers, steps=steps, step_cpu_s=cpu)


def submit_all(env, scheduler, specs):
    records = [JobRecord(spec=s, ordinal=i) for i, s in enumerate(specs)]

    def submitter():
        for record in records:
            scheduler.submit(record)
        return None
        yield  # pragma: no cover - makes this a generator

    env.process(submitter())
    return records


def test_all_jobs_complete_and_none_starve():
    tenants = [Tenant("t-a"), Tenant("t-b"), Tenant("t-c")]
    env, pool, scheduler = make_world(concurrency=3, tenants=tenants)
    specs = [
        spec(f"{t.tenant_id}/j{i}", t.tenant_id, workers=1 + (i % 3))
        for t in tenants
        for i in range(4)
    ]
    records = submit_all(env, scheduler, specs)
    env.run()
    assert all(r.done and r.ok for r in records)
    assert len(scheduler.completed) == len(records)


def test_wide_job_is_not_starved_by_backfill():
    """A pool-filling job seals the sweep and eventually dispatches."""
    tenants = [Tenant("big"), Tenant("small")]
    env, pool, scheduler = make_world(concurrency=4, tenants=tenants)
    specs = [spec("big/j0", "big", workers=4, steps=8)]
    specs += [spec(f"small/j{i}", "small", workers=1, steps=2) for i in range(30)]
    records = submit_all(env, scheduler, specs)
    env.run()
    wide = records[0]
    assert wide.done and wide.ok
    # The seal kicks in well before the little jobs drain completely:
    # the wide job must not be the very last thing to start.
    started_after_wide = [
        r for r in records[1:] if r.started_at > wide.started_at
    ]
    assert started_after_wide, "backfill starved the wide job to the end"


def test_premium_tenant_waits_less_than_batch_under_contention():
    tenants = [Tenant("vip", priority="premium"), Tenant("bulk", priority="batch")]
    env, pool, scheduler = make_world(concurrency=2, tenants=tenants)
    specs = []
    for i in range(8):
        specs.append(spec(f"vip/j{i}", "vip", workers=1, steps=6, cpu=0.3))
        specs.append(spec(f"bulk/j{i}", "bulk", workers=1, steps=6, cpu=0.3))
    records = submit_all(env, scheduler, specs)
    env.run()
    vip_wait = sum(r.queue_wait for r in records if r.spec.tenant_id == "vip")
    bulk_wait = sum(r.queue_wait for r in records if r.spec.tenant_id == "bulk")
    assert vip_wait < bulk_wait


def test_concurrent_activations_never_exceed_the_pool_cap():
    tenants = [Tenant("t-a"), Tenant("t-b")]
    cap = 3
    env, pool, scheduler = make_world(concurrency=cap, tenants=tenants)
    specs = [
        spec(f"{t}/j{i}", t, workers=1 + (i % cap), steps=3)
        for t in ("t-a", "t-b")
        for i in range(10)
    ]
    submit_all(env, scheduler, specs)
    env.run()
    # Sweep the billing records' execution windows: at no instant do more
    # than `cap` activations overlap.  (queue_when_full=False means an
    # admission bug would also have raised inside invoke.)
    events = []
    for record in pool.platform.billing.records:
        events.append((record.start, 1))
        events.append((record.end, -1))
    live = peak = 0
    for _, delta in sorted(events):
        live += delta
        peak = max(peak, live)
    assert 0 < peak <= cap


def test_submit_rejects_unknown_tenant_and_oversized_job():
    tenants = [Tenant("t-a")]
    env, pool, scheduler = make_world(concurrency=2, tenants=tenants)
    with pytest.raises(KeyError):
        scheduler.submit(JobRecord(spec=spec("x/j0", "x"), ordinal=0))
    with pytest.raises(ValueError, match="never be admitted"):
        scheduler.submit(
            JobRecord(spec=spec("t-a/j0", "t-a", workers=5), ordinal=0)
        )


def test_scale_to_zero_reclaims_warm_and_recolds_the_next_job():
    tenants = [Tenant("t-a")]
    env, pool, scheduler = make_world(
        concurrency=2, scale_to_zero_after_s=10.0, keep_alive_s=300.0,
        tenants=tenants,
    )
    first = JobRecord(spec=spec("t-a/j0", "t-a"), ordinal=0)

    def driver():
        scheduler.submit(first)
        yield env.timeout(100.0)  # idle long past the scale-to-zero window
        assert pool.platform.warm_count() == 0
        second = JobRecord(spec=spec("t-a/j1", "t-a"), ordinal=1)
        scheduler.submit(second)

    env.process(driver())
    env.run()
    events = [event for _, event, _, _, _ in pool.platform.container_log]
    assert "reclaim" in events
    # Both jobs cold-started: the warm container did not survive idling.
    assert pool.cold_activations == 2
    assert pool.warm_activations == 0


def test_warm_containers_are_reused_across_tenants():
    tenants = [Tenant("t-a"), Tenant("t-b")]
    env, pool, scheduler = make_world(concurrency=2, keep_alive_s=600.0,
                                      tenants=tenants)
    first = JobRecord(spec=spec("t-a/j0", "t-a"), ordinal=0)
    second = JobRecord(spec=spec("t-b/j0", "t-b"), ordinal=1)

    def driver():
        scheduler.submit(first)
        yield env.timeout(60.0)
        scheduler.submit(second)

    env.process(driver())
    env.run()
    assert pool.cold_activations == 1
    assert pool.warm_activations == 1
    # The reused container's id shows up under both tenants' activations.
    by_container = {}
    for record in pool.platform.billing.records:
        owner = pool.owners[("pool", record.activation_id)][0]
        by_container.setdefault(record.container_id, set()).add(owner)
    assert {"t-a", "t-b"} in by_container.values()
