"""Property-based tests: every hot-path fast path is bit-identical.

The performance work (cached matvec/rmatvec state, the SciPy matvec
handle, n-way merges, fused peer application, buffer-copy snapshots)
is only admissible because each fast path produces **byte-for-byte**
the same floats as the naive formulation it replaced — the determinism
oracle checks the end-to-end property, these tests check each kernel
in isolation so a violation is pinpointed, not just detected.
"""

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import WorkerCheckpoint
from repro.core.significance import SignificanceFilter
from repro.ml import ModelUpdate, ParameterSet
from repro.ml.optim import MomentumSGD
from repro.ml.sparse import CSRMatrix, SparseDelta

N_COLS = 16
SIZE = 20

small_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def csr_matrices(draw):
    n_rows = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for _ in range(n_rows):
        cols = draw(
            st.lists(
                st.integers(min_value=0, max_value=N_COLS - 1),
                max_size=8,
                unique=True,
            )
        )
        vals = draw(
            st.lists(small_floats, min_size=len(cols), max_size=len(cols))
        )
        rows.append((np.asarray(cols, dtype=np.int32), np.asarray(vals)))
    return CSRMatrix.from_rows(rows, N_COLS)


@st.composite
def sparse_deltas(draw, unique=True):
    idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=SIZE - 1),
            max_size=10,
            unique=unique,
        )
    )
    if unique:
        idx = sorted(idx)
    vals = draw(st.lists(small_floats, min_size=len(idx), max_size=len(idx)))
    return SparseDelta(np.asarray(idx, dtype=np.int64), np.asarray(vals), (SIZE,))


@st.composite
def model_updates(draw):
    names = draw(
        st.lists(st.sampled_from(["u", "m", "b"]), min_size=1, max_size=3, unique=True)
    )
    return ModelUpdate({name: draw(sparse_deltas()) for name in names})


# -- matvec / rmatvec: cached and SciPy paths == naive formulation --------
@given(m=csr_matrices(), w_vals=st.lists(small_floats, min_size=N_COLS, max_size=N_COLS))
@settings(max_examples=50, deadline=None)
def test_matvec_cached_paths_bit_equal_naive(m, w_vals):
    w = np.asarray(w_vals)
    naive = np.zeros(m.shape[0])
    if m.nnz:
        row_ids = np.repeat(np.arange(m.shape[0]), np.diff(m.indptr))
        naive = np.bincount(
            row_ids, weights=m.data * w[m.indices], minlength=m.shape[0]
        )
    first = m.matvec(w)  # builds + self-verifies the SciPy handle
    second = m.matvec(w)  # served from whichever path the handle check chose
    assert first.tobytes() == naive.tobytes()
    assert second.tobytes() == naive.tobytes()
    assert m._matvec_numpy(w).tobytes() == naive.tobytes()


@given(m=csr_matrices(), r_scale=small_floats)
@settings(max_examples=50, deadline=None)
def test_rmatvec_cached_support_bit_equal_naive(m, r_scale):
    r = r_scale * np.arange(1.0, m.shape[0] + 1)
    first = m.rmatvec_on_support(r)
    second = m.rmatvec_on_support(r)  # cached support
    if m.nnz == 0:
        assert first.nnz == second.nnz == 0
        return
    cols, inverse = np.unique(m.indices, return_inverse=True)
    per_entry = m.data * np.repeat(r, np.diff(m.indptr))
    values = np.bincount(inverse, weights=per_entry, minlength=len(cols))
    for result in (first, second):
        assert result.indices.tobytes() == cols.astype(np.int64).tobytes()
        assert result.values.tobytes() == values.tobytes()
        assert result.has_sorted_unique_indices


@given(m=csr_matrices(), cut=st.integers(min_value=0, max_value=6))
@settings(max_examples=50, deadline=None)
def test_row_slice_trusted_equals_validated_constructor(m, cut):
    start, stop = sorted((cut % (m.shape[0] + 1), m.shape[0]))
    fast = m.row_slice(start, stop)
    lo, hi = m.indptr[start], m.indptr[stop]
    slow = CSRMatrix(
        m.indptr[start : stop + 1] - lo,
        m.indices[lo:hi],
        m.data[lo:hi],
        (stop - start, m.shape[1]),
    )
    assert fast.indptr.tobytes() == slow.indptr.tobytes()
    assert fast.indices.tobytes() == slow.indices.tobytes()
    assert fast.data.tobytes() == slow.data.tobytes()
    assert fast.shape == slow.shape


# -- n-way merges == pairwise folds ---------------------------------------
@given(deltas=st.lists(sparse_deltas(), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_delta_merge_many_equals_pairwise_fold(deltas):
    fold = deltas[0]
    for other in deltas[1:]:
        fold = fold.merge(other)
    many = SparseDelta.merge_many(deltas, shape=(SIZE,))
    assert many.indices.tobytes() == fold.indices.tobytes()
    assert many.values.tobytes() == fold.values.tobytes()
    # value objects: the result aliases none of the inputs
    for d in deltas:
        assert many is not d
        assert not np.shares_memory(many.values, d.values)


@given(updates=st.lists(model_updates(), min_size=2, max_size=5))
@settings(max_examples=50, deadline=None)
def test_update_merge_many_equals_pairwise_fold(updates):
    fold = updates[0]
    for other in updates[1:]:
        fold = fold.merge(other)
    many = ModelUpdate.merge_many(updates)
    assert many.names == fold.names
    for name in many.names:
        assert many[name].indices.tobytes() == fold[name].indices.tobytes()
        assert many[name].values.tobytes() == fold[name].values.tobytes()


# -- scatters: add.at reference == fancy-index variant --------------------
@given(delta=sparse_deltas(unique=False), base=small_floats)
@settings(max_examples=50, deadline=None)
def test_apply_to_equals_add_at_reference(delta, base):
    dense = np.full((SIZE,), base)
    reference = dense.copy()
    if delta.nnz:
        np.add.at(np.ravel(reference), delta.indices, delta.values)
    delta.apply_to(dense)
    assert dense.tobytes() == reference.tobytes()


@given(delta=sparse_deltas(unique=True), base=small_floats)
@settings(max_examples=50, deadline=None)
def test_apply_fancy_equals_apply_to_for_sorted_unique(delta, base):
    via_add_at = np.full((SIZE,), base)
    via_fancy = via_add_at.copy()
    delta.apply_to(via_add_at)
    delta._apply_fancy(via_fancy)
    assert via_fancy.tobytes() == via_add_at.tobytes()


@given(updates=st.lists(model_updates(), min_size=1, max_size=5), base=small_floats)
@settings(max_examples=50, deadline=None)
def test_apply_many_equals_sequential_apply(updates, base):
    names = sorted({n for u in updates for n in u.names} | {"u"})
    fused = ParameterSet({n: np.full((SIZE,), base) for n in names})
    sequential = ParameterSet({n: np.full((SIZE,), base) for n in names})
    fused.apply_many(updates)
    for update in updates:
        sequential.apply(update)
    for name in names:
        assert fused[name].tobytes() == sequential[name].tobytes()


# -- snapshot == deepcopy -------------------------------------------------
@st.composite
def warmed_checkpoints(draw):
    """A checkpoint whose optimizer/filter state is non-trivially warmed."""
    vals = draw(st.lists(small_floats, min_size=SIZE, max_size=SIZE))
    params = ParameterSet({"w": np.asarray(vals)})
    optimizer = MomentumSGD(0.5, momentum=0.9)
    sig_filter = SignificanceFilter(0.5, {"w": (SIZE,)})
    for t, grad in enumerate(
        draw(st.lists(sparse_deltas(), min_size=1, max_size=3)), start=1
    ):
        update = optimizer.step(params, ModelUpdate({"w": grad}), t)
        params.apply(update)
        sig_filter.step(params, update, t)
    return WorkerCheckpoint(
        worker_id=draw(st.integers(min_value=0, max_value=31)),
        step=draw(st.integers(min_value=0, max_value=10_000)),
        params=params,
        optimizer=optimizer,
        sig_filter=sig_filter,
        active_workers=draw(st.integers(min_value=1, max_value=32)),
        last_report={"type": "step_done", "loss": draw(small_floats)},
    )


def _checkpoint_buffers(ckpt):
    """Every NumPy buffer a checkpoint owns, as (label, bytes) pairs."""
    out = [(f"params/{n}", ckpt.params[n].tobytes()) for n in ckpt.params.names]
    for slot in sorted(ckpt.optimizer._state):
        for name, buf in sorted(ckpt.optimizer._state[slot].items()):
            out.append((f"optim/{slot}/{name}", buf.tobytes()))
    for name in sorted(ckpt.sig_filter._acc):
        out.append((f"filter/{name}", ckpt.sig_filter._acc[name].tobytes()))
    return out


@given(warmed_checkpoints())
@settings(max_examples=25, deadline=None)
def test_snapshot_equals_deepcopy(ckpt):
    snap = ckpt.snapshot()
    deep = copy.deepcopy(ckpt)
    assert snap.worker_id == deep.worker_id
    assert snap.step == deep.step
    assert snap.active_workers == deep.active_workers
    assert snap.pending_replica == deep.pending_replica
    assert snap.last_report == deep.last_report
    assert _checkpoint_buffers(snap) == _checkpoint_buffers(deep)


@given(warmed_checkpoints(), small_floats)
@settings(max_examples=25, deadline=None)
def test_snapshot_is_isolated_from_later_mutation(ckpt, noise):
    snap = ckpt.snapshot()
    before = _checkpoint_buffers(snap)
    ckpt.params["w"][:] += noise + 1.0
    for per_slot in ckpt.optimizer._state.values():
        for buf in per_slot.values():
            buf += noise + 1.0
    ckpt.sig_filter._acc["w"][:] += noise + 1.0
    ckpt.last_report["loss"] = "clobbered"
    assert _checkpoint_buffers(snap) == before
    assert snap.last_report["loss"] != "clobbered"
