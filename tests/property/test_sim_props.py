"""Property-based tests for the DES kernel and curve/EWMA math."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ewma
from repro.sim import Environment

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=30,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []

    def proc(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delay_list:
        env.process(proc(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_final_time_is_max_delay(delay_list):
    env = Environment()
    for d in delay_list:
        env.timeout(d)
    env.run()
    assert env.now == max(delay_list)


@given(delays)
def test_same_delays_fifo_tiebreak(delay_list):
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5.0)
        order.append(tag)

    for tag in range(len(delay_list)):
        env.process(proc(tag))
    env.run()
    assert order == list(range(len(delay_list)))


@given(delays, delays)
def test_nested_processes_conserve_time(outer, inner):
    """A parent waiting on children finishes at max(child end times)."""
    env = Environment()

    def child(d):
        yield env.timeout(d)
        return d

    def parent():
        children = [env.process(child(d)) for d in inner]
        yield env.all_of(children)
        return env.now

    p = env.process(parent())
    env.run()
    assert p.value == max(inner)


# Drawn from a tiny value set so Hypothesis reliably generates timestamp
# collisions — the case the heap's (time, seq, event) tie-breaker (SIM006)
# exists for.
colliding_delays = st.lists(
    st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0]),
    min_size=2, max_size=40,
)


@given(colliding_delays)
def test_same_timestamp_events_pop_in_scheduling_order(delay_list):
    """Among events sharing a timestamp, firing order == scheduling order.

    This is the determinism contract behind the kernel's (time, seq,
    event) heap entries: heapq alone would compare payloads on time ties.
    """
    env = Environment()
    fired = []

    def proc(tag, d):
        yield env.timeout(d)
        fired.append((env.now, tag))

    for tag, d in enumerate(delay_list):
        env.process(proc(tag, d))
    env.run()
    assert len(fired) == len(delay_list)
    # stable sort of the schedule by time = expected (time, tag) sequence
    expected = sorted(
        ((d, tag) for tag, d in enumerate(delay_list)), key=lambda p: p[0]
    )
    assert fired == expected


# ------------------------------------------------------------------- EWMA
values_lists = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=1, max_size=50,
)


@given(values_lists, st.floats(min_value=0.01, max_value=1.0))
def test_ewma_bounded_by_input_range(values, alpha):
    out = ewma(values, alpha=alpha)
    assert out.min() >= min(values) - 1e-9
    assert out.max() <= max(values) + 1e-9


@given(values_lists)
def test_ewma_alpha_one_is_identity(values):
    np.testing.assert_allclose(ewma(values, alpha=1.0), values)


@given(st.floats(min_value=-100, max_value=100, allow_nan=False),
       st.integers(min_value=1, max_value=40),
       st.floats(min_value=0.05, max_value=0.95))
def test_ewma_constant_input_is_fixed_point(value, n, alpha):
    out = ewma([value] * n, alpha=alpha)
    np.testing.assert_allclose(out, value)
