"""Property-based tests: checkpoints survive a KV put/get cycle intact.

Fault-tolerant training relies on two invariants of the checkpoint path:

1. **Round-trip fidelity** — whatever state a worker or the supervisor
   writes to the KV store comes back equal after relaunch.
2. **Snapshot isolation** — the simulated KV store holds Python objects
   by reference, so checkpoint writes deep-copy; mutating the live state
   after a checkpoint must never alter the stored snapshot.
"""

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import JobConfig
from repro.core.runtime import WorkerCheckpoint
from repro.core.significance import SignificanceFilter
from repro.core.supervisor import SupervisorState
from repro.ml import ParameterSet
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import SGD
from repro.sim import Environment, RandomStreams
from repro.storage import KVStore

SIZE = 12

small_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def kv_roundtrip(value):
    """Deep-copy-on-write put/get through a simulated KV store."""
    env = Environment()
    kv = KVStore(env, RandomStreams(seed=0))

    def proc():
        yield from kv.set("ckpt", copy.deepcopy(value))
        stored = yield from kv.get("ckpt")
        return stored

    p = env.process(proc())
    env.run()
    assert p.ok, p.value
    return p.value


@st.composite
def worker_checkpoints(draw):
    vals = draw(st.lists(small_floats, min_size=SIZE, max_size=SIZE))
    params = ParameterSet({"w": np.asarray(vals)})
    ckpt = WorkerCheckpoint(
        worker_id=draw(st.integers(min_value=0, max_value=31)),
        step=draw(st.integers(min_value=0, max_value=10_000)),
        params=params,
        optimizer=SGD(lr=0.1),
        sig_filter=SignificanceFilter(0.5, {"w": (SIZE,)}),
        active_workers=draw(st.integers(min_value=1, max_value=32)),
    )
    if draw(st.booleans()):
        ckpt.last_report = {
            "type": "step_done",
            "step": ckpt.step,
            "worker": ckpt.worker_id,
            "loss": draw(small_floats),
        }
    return ckpt


@settings(max_examples=25, deadline=None)
@given(worker_checkpoints())
def test_worker_checkpoint_roundtrips_through_kv(ckpt):
    stored = kv_roundtrip(ckpt)
    assert stored.worker_id == ckpt.worker_id
    assert stored.step == ckpt.step
    assert stored.active_workers == ckpt.active_workers
    assert stored.last_report == ckpt.last_report
    assert stored.pending_replica == ckpt.pending_replica
    np.testing.assert_array_equal(stored.params["w"], ckpt.params["w"])
    assert stored.nbytes == ckpt.nbytes


@settings(max_examples=25, deadline=None)
@given(worker_checkpoints(), small_floats)
def test_worker_checkpoint_snapshot_is_isolated(ckpt, noise):
    before = ckpt.params["w"].copy()
    stored = kv_roundtrip(ckpt)
    # Mutations after the checkpoint must not reach the snapshot.
    ckpt.params["w"][:] += noise + 1.0
    ckpt.step += 1
    np.testing.assert_array_equal(stored.params["w"], before)
    assert stored.step == ckpt.step - 1


def _make_runtime():
    from repro.experiments.common import build_world, make_runtime

    dataset = movielens_like(
        MovieLensSpec(n_users=30, n_movies=20, n_ratings=1000, batch_size=250),
        seed=0,
    )
    config = JobConfig(
        model=PMF(30, 20, rank=2),
        make_optimizer=lambda: SGD(lr=0.1),
        dataset=dataset,
        n_workers=4,
        max_steps=10,
    )
    return make_runtime(build_world(seed=0), config)


RUNTIME = _make_runtime()


@st.composite
def supervisor_states(draw):
    state = SupervisorState(RUNTIME)
    workers = draw(
        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8)
    )
    state.active = set(workers)
    state.completed_step = draw(st.integers(min_value=0, max_value=500))
    state.last_loss = {
        w: draw(small_floats) for w in workers if draw(st.booleans())
    }
    state.resyncs_this_step = draw(st.integers(min_value=0, max_value=8))
    if draw(st.booleans()):
        state.releases[state.completed_step] = {
            "type": "step_complete",
            "step": state.completed_step,
            "stop": False,
            "evictions": [],
            "active_workers": len(workers),
        }
    return state


@settings(max_examples=25, deadline=None)
@given(supervisor_states())
def test_supervisor_state_roundtrips_through_kv(state):
    stored = kv_roundtrip(state)
    assert stored.active == state.active
    assert stored.completed_step == state.completed_step
    assert stored.last_loss == state.last_loss
    assert stored.releases == state.releases
    assert stored.resyncs_this_step == state.resyncs_this_step
    assert stored.stop_reason == state.stop_reason


@settings(max_examples=25, deadline=None)
@given(supervisor_states())
def test_supervisor_snapshot_is_isolated(state):
    before_active = set(state.active)
    before_step = state.completed_step
    stored = kv_roundtrip(state)
    state.active.discard(min(state.active))
    state.completed_step += 1
    state.releases[before_step + 1] = {"type": "step_complete"}
    assert stored.active == before_active
    assert stored.completed_step == before_step
    assert before_step + 1 not in stored.releases or (
        stored.releases != state.releases
    )
