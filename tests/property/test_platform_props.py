"""Property-based tests: scheduler invariants of the multi-tenant platform.

Three invariants, exercised over randomized job mixes:

1. **No starvation** — whatever the mix of widths, steps and tenants,
   every submitted job eventually starts and completes (the skip-seal
   mechanism plus validated admission make this a theorem, not a hope).
2. **Admission safety** — at no simulated instant do more concurrently
   executing activations exist than the pool's concurrency cap.
3. **Determinism** — the same submission trace, replayed in a fresh
   world with the same seed, yields a bit-identical event digest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import (
    FairShareScheduler,
    JobQueue,
    JobRecord,
    JobSpec,
    SharedPool,
    Tenant,
)
from repro.platform.scenario import ScenarioConfig, run_scenario
from repro.platform.arrivals import JobSizeProfile, TrafficProfile
from repro.sim import Environment, Monitor, RandomStreams
from repro.storage import KVStore

CAP = 3
TENANTS = [
    Tenant("t-a", priority="premium"),
    Tenant("t-b", priority="standard"),
    Tenant("t-c", priority="batch"),
]

job_strategy = st.tuples(
    st.sampled_from(["t-a", "t-b", "t-c"]),   # tenant
    st.integers(min_value=1, max_value=CAP),  # workers
    st.integers(min_value=1, max_value=5),    # steps
    st.floats(min_value=0.05, max_value=0.5), # cpu per step
    st.floats(min_value=0.0, max_value=30.0), # inter-submit gap, seconds
)


def run_mix(jobs, seed=0):
    env = Environment()
    streams = RandomStreams(seed=seed)
    kv = KVStore(env, streams)
    monitor = Monitor(trace=True)
    pool = SharedPool(
        env, streams, kv, concurrency=CAP, memory_grades_mb=(2048,),
        keep_alive_s=120.0, scale_to_zero_after_s=30.0, monitor=monitor,
    )
    scheduler = FairShareScheduler(
        env, pool, queue=JobQueue(), tenants=TENANTS, max_skips=2,
        monitor=monitor,
    )
    records = [
        JobRecord(
            spec=JobSpec(f"{tenant}/j{i}", tenant, workers, steps, cpu),
            ordinal=i,
        )
        for i, (tenant, workers, steps, cpu, _) in enumerate(jobs)
    ]

    def submitter():
        for record, (_, _, _, _, gap) in zip(records, jobs):
            if gap > 0.0:
                yield env.timeout(gap)
            scheduler.submit(record)

    env.process(submitter())
    env.run()
    return records, pool, monitor.trace_digest()


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=20))
def test_no_job_ever_starves(jobs):
    records, _, _ = run_mix(jobs)
    assert all(r.done and r.ok for r in records)
    assert all(r.started_at is not None for r in records)


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=20))
def test_concurrency_cap_never_exceeded(jobs):
    _, pool, _ = run_mix(jobs)
    events = []
    for record in pool.platform.billing.records:
        events.append((record.start, 1))
        events.append((record.end, -1))
    live = peak = 0
    for _, delta in sorted(events):
        live += delta
        peak = max(peak, live)
    assert peak <= CAP


@settings(max_examples=10, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_same_submission_trace_yields_identical_digest(jobs, seed):
    records_a, _, digest_a = run_mix(jobs, seed=seed)
    records_b, _, digest_b = run_mix(jobs, seed=seed)
    assert digest_a == digest_b
    assert [r.finished_at for r in records_a] == [
        r.finished_at for r in records_b
    ]


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_full_scenario_digest_is_seed_stable(seed):
    config = ScenarioConfig(
        seed=seed, n_tenants=4, horizon_s=900.0, pool_concurrency=4,
        traffic=TrafficProfile(mean_rate_per_h=12.0),
        sizes=JobSizeProfile(max_workers=3, min_steps=3, max_steps=8),
    )
    first = run_scenario(config)
    second = run_scenario(config)
    assert first.digest == second.digest
    assert first.metrics == second.metrics
