"""Property-based tests for the ISP significance filter invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SignificanceFilter, threshold_at
from repro.ml import ModelUpdate, ParameterSet
from repro.ml.sparse import SparseDelta

SIZE = 10

small_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def update_sequences(draw):
    """A short sequence of sparse updates over a SIZE-vector."""
    n_steps = draw(st.integers(min_value=1, max_value=8))
    seq = []
    for _ in range(n_steps):
        n = draw(st.integers(min_value=0, max_value=SIZE))
        idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=SIZE - 1),
                min_size=n, max_size=n, unique=True,
            )
        )
        vals = draw(st.lists(small_floats, min_size=n, max_size=n))
        seq.append(
            ModelUpdate(
                {
                    "w": SparseDelta(
                        np.asarray(idx, np.int64), np.asarray(vals), (SIZE,)
                    )
                }
            )
        )
    return seq


@st.composite
def param_vectors(draw):
    vals = draw(
        st.lists(small_floats, min_size=SIZE, max_size=SIZE)
    )
    return ParameterSet({"w": np.asarray(vals)})


@given(update_sequences(), param_vectors(),
       st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=100)
def test_conservation_invariant(seq, params, v):
    """extracted + residual == total added, for any v and any sequence."""
    filt = SignificanceFilter(v, {"w": (SIZE,)})
    total = np.zeros(SIZE)
    extracted = np.zeros(SIZE)
    for t, update in enumerate(seq, start=1):
        update["w"].apply_to(total)
        out = filt.step(params, update, t)
        out["w"].apply_to(extracted)
    np.testing.assert_allclose(
        extracted + filt.accumulated["w"], total, atol=1e-9
    )


@given(update_sequences(), param_vectors())
@settings(max_examples=100)
def test_v_zero_never_accumulates(seq, params):
    """BSP equivalence: with v=0 the residual is always fully drained."""
    filt = SignificanceFilter(0.0, {"w": (SIZE,)})
    for t, update in enumerate(seq, start=1):
        filt.step(params, update, t)
        assert np.all(filt.accumulated["w"] == 0.0)


@given(update_sequences(), param_vectors(),
       st.floats(min_value=0.01, max_value=2.0))
@settings(max_examples=100)
def test_extracted_entries_were_significant(seq, params, v):
    """Every broadcast entry passed the relative-significance test."""
    filt = SignificanceFilter(v, {"w": (SIZE,)})
    for t, update in enumerate(seq, start=1):
        before = filt.accumulated["w"].copy()
        update["w"].apply_to(before)  # accumulator state pre-extraction
        out = filt.step(params, update, t)
        v_t = threshold_at(v, t)
        x = np.abs(params["w"]) + 1e-8
        for i, value in zip(out["w"].indices, out["w"].values):
            assert abs(before[i]) / x[i] > v_t
            assert value == before[i]


@given(update_sequences(), param_vectors(),
       st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=100)
def test_residual_below_threshold_after_extraction(seq, params, v):
    """What stays local is (by construction) below the threshold."""
    filt = SignificanceFilter(v, {"w": (SIZE,)})
    for t, update in enumerate(seq, start=1):
        filt.step(params, update, t)
        v_t = threshold_at(v, t)
        x = np.abs(params["w"]) + 1e-8
        residual = np.abs(filt.accumulated["w"])
        assert np.all(residual / x <= v_t + 1e-12)


@given(st.floats(min_value=0.0, max_value=5.0),
       st.integers(min_value=1, max_value=10_000))
def test_threshold_monotone_decreasing_in_t(v, t):
    assert threshold_at(v, t + 1) <= threshold_at(v, t)


@given(update_sequences(), param_vectors())
@settings(max_examples=50)
def test_larger_v_extracts_no_more_than_smaller(seq, params):
    """Stricter filters broadcast a subset of the bytes, step by step."""
    loose = SignificanceFilter(0.1, {"w": (SIZE,)})
    strict = SignificanceFilter(1.0, {"w": (SIZE,)})
    loose_total = strict_total = 0
    for t, update in enumerate(seq, start=1):
        loose_total += loose.step(params, update, t)["w"].nnz
        strict_total += strict.step(params, update, t)["w"].nnz
    assert strict_total <= loose_total
