"""Property-based tests for the sparse data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.sparse import CSRMatrix, SparseDelta

SHAPE = 12  # fixed flat tensor size for delta strategies

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def deltas(draw, size=SHAPE):
    n = draw(st.integers(min_value=0, max_value=size))
    idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=n, max_size=n, unique=True,
        )
    )
    vals = draw(st.lists(finite, min_size=n, max_size=n))
    return SparseDelta(
        np.asarray(idx, dtype=np.int64), np.asarray(vals), (size,)
    )


@st.composite
def dense_matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=8))
    cols = draw(st.integers(min_value=1, max_value=8))
    mat = draw(
        arrays(np.float64, (rows, cols), elements=finite)
    )
    mask = draw(arrays(np.bool_, (rows, cols)))
    return mat * mask


# ----------------------------------------------------------------- deltas
@given(deltas(), deltas())
def test_merge_commutative(a, b):
    np.testing.assert_allclose(
        a.merge(b).to_dense(), b.merge(a).to_dense(), atol=1e-9
    )


@given(deltas(), deltas(), deltas())
def test_merge_associative(a, b, c):
    left = a.merge(b).merge(c).to_dense()
    right = a.merge(b.merge(c)).to_dense()
    np.testing.assert_allclose(left, right, atol=1e-9)


@given(deltas())
def test_merge_with_empty_is_identity(a):
    empty = SparseDelta.empty((SHAPE,))
    np.testing.assert_allclose(a.merge(empty).to_dense(), a.to_dense())


@given(deltas(), deltas())
def test_merge_equals_dense_sum(a, b):
    np.testing.assert_allclose(
        a.merge(b).to_dense(), a.to_dense() + b.to_dense(), atol=1e-9
    )


@given(deltas(), finite)
def test_scale_equals_dense_scale(a, factor):
    np.testing.assert_allclose(
        a.scale(factor).to_dense(), a.to_dense() * factor, rtol=1e-9
    )


@given(deltas())
def test_apply_to_matches_to_dense(a):
    buf = np.zeros(SHAPE)
    a.apply_to(buf)
    np.testing.assert_allclose(buf, a.to_dense())


@given(deltas())
def test_from_dense_roundtrip(a):
    rebuilt = SparseDelta.from_dense(a.to_dense())
    np.testing.assert_allclose(rebuilt.to_dense(), a.to_dense())


@given(deltas())
def test_nbytes_proportional_to_nnz(a):
    assert a.nbytes == a.nnz * 12


# -------------------------------------------------------------------- CSR
@given(dense_matrices())
@settings(max_examples=50)
def test_csr_dense_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.to_dense(), dense)


@given(dense_matrices())
@settings(max_examples=50)
def test_csr_matvec_matches_dense(dense):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(0)
    w = rng.normal(size=dense.shape[1])
    np.testing.assert_allclose(csr.matvec(w), dense @ w, atol=1e-6, rtol=1e-9)


@given(dense_matrices())
@settings(max_examples=50)
def test_csr_rmatvec_matches_dense(dense):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(1)
    r = rng.normal(size=dense.shape[0])
    np.testing.assert_allclose(
        csr.rmatvec_on_support(r).to_dense(), dense.T @ r, atol=1e-6, rtol=1e-9
    )


@given(dense_matrices(), st.integers(min_value=0, max_value=8),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=50)
def test_csr_row_slice_matches_dense(dense, lo, hi):
    csr = CSRMatrix.from_dense(dense)
    lo, hi = sorted((min(lo, dense.shape[0]), min(hi, dense.shape[0])))
    np.testing.assert_allclose(csr.row_slice(lo, hi).to_dense(), dense[lo:hi])
