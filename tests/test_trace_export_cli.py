"""Exporters and the ``repro-trace`` CLI: Chrome JSON, JSONL round-trip.

The Chrome export must be structurally loadable by Perfetto (metadata
events, ``ph: "X"`` completes with microsecond timestamps, deterministic
track ids); the JSONL dump must round-trip spans, events *and* billing
records so every analysis works on a saved trace exactly as on a live
tracer.
"""

import json

import pytest

from repro import JobConfig, run_mlless
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD
from repro.trace import (
    CostLedger,
    Tracer,
    chrome_trace,
    parse_jsonl,
    to_jsonl_lines,
)
from repro.trace_cli import main as cli_main
from repro.trace_cli import summary_text, write_run_trace

SPEC = MovieLensSpec(n_users=60, n_movies=50, n_ratings=3_000, rank=3,
                     batch_size=400)


@pytest.fixture(scope="module")
def traced_run():
    config = JobConfig(
        model=PMF(SPEC.n_users, SPEC.n_movies, rank=4, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9),
        dataset=movielens_like(SPEC, seed=2),
        n_workers=3,
        significance_v=0.5,
        target_loss=None,
        max_steps=10,
        seed=4,
    )
    tracer = Tracer()
    result = run_mlless(config, tracer=tracer)
    return result, tracer, result.meter.faas


# ---------------------------------------------------------- chrome trace
def test_chrome_trace_structure(traced_run):
    _result, tracer, _billing = traced_run
    doc = chrome_trace(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["clock"] == "simulated"
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    completes = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(completes) == len(tracer.spans)
    assert len(instants) == len(tracer.events)
    # every complete event references a named track
    named_tids = {e["tid"] for e in metadata if e["name"] == "thread_name"}
    assert {e["tid"] for e in completes} <= named_tids
    track_names = {e["args"]["name"] for e in metadata
                   if e["name"] == "thread_name"}
    assert {"worker-0", "worker-1", "worker-2", "supervisor",
            "driver"} <= track_names
    # timestamps are microseconds of sim time, durations non-negative
    first_step = next(e for e in completes if e["cat"] == "step")
    span = next(s for s in tracer.spans if s.category == "step")
    assert first_step["ts"] == pytest.approx(span.start * 1e6)
    assert all(e["dur"] >= 0.0 for e in completes)
    # the whole document is JSON-serializable as-is
    json.dumps(doc)


def test_chrome_trace_tids_are_deterministic(traced_run):
    _result, tracer, _billing = traced_run
    a, b = chrome_trace(tracer), chrome_trace(tracer)
    assert a == b


# --------------------------------------------------------- jsonl roundtrip
def test_jsonl_roundtrip_with_billing(traced_run):
    _result, tracer, billing = traced_run
    lines = list(to_jsonl_lines(tracer, billing=billing))
    header = json.loads(lines[0])
    assert header["kind"] == "meta"
    assert header["n_spans"] == len(tracer.spans)
    assert header["n_records"] == len(billing.records)

    data = parse_jsonl(lines)
    assert len(data.spans) == len(tracer.spans)
    assert len(data.events) == len(tracer.events)
    assert [s.to_dict() for s in data.spans] == [s.to_dict() for s in tracer.spans]
    assert [e.to_dict() for e in data.events] == [e.to_dict() for e in tracer.events]
    # billing rebuilds bit-for-bit: same records, same rate, same bill
    rebuilt = data.billing
    assert rebuilt.rate_per_gb_s == billing.rate_per_gb_s
    assert rebuilt.records == billing.records
    assert rebuilt.total_cost() == billing.total_cost()
    # so the ledger on the parsed trace matches the live one
    live = CostLedger.from_trace(tracer, billing).reconcile()
    loaded = CostLedger.from_trace(data, rebuilt).reconcile()
    assert loaded == live


def test_jsonl_without_billing_has_no_records(traced_run):
    _result, tracer, _billing = traced_run
    data = parse_jsonl(to_jsonl_lines(tracer))
    assert data.records == []
    with pytest.raises(ValueError):
        data.billing


def test_parse_jsonl_rejects_unknown_kind():
    with pytest.raises(ValueError):
        parse_jsonl(['{"kind": "mystery"}'])


# ----------------------------------------------------------------- files
def test_write_run_trace_writes_both_files(traced_run, tmp_path):
    _result, tracer, billing = traced_run
    target = tmp_path / "nested" / "run.trace.json"
    chrome_path, jsonl_path = write_run_trace(tracer, str(target),
                                              billing=billing)
    assert chrome_path == str(target)
    assert jsonl_path == str(target) + ".jsonl"
    with open(chrome_path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    with open(jsonl_path) as fh:
        data = parse_jsonl(fh)
    assert data.records


def test_summary_text_sections(traced_run):
    _result, tracer, billing = traced_run
    text = summary_text(tracer, billing=billing)
    assert "cost attribution by category" in text
    assert "critical path" in text
    assert "straggler report" in text
    # without billing the cost section is skipped but steps still report
    no_billing = summary_text(tracer)
    assert "cost attribution" not in no_billing
    assert "critical path" in no_billing


# ------------------------------------------------------------------- CLI
@pytest.fixture(scope="module")
def jsonl_file(traced_run, tmp_path_factory):
    _result, tracer, billing = traced_run
    target = tmp_path_factory.mktemp("traces") / "run.trace.json"
    _chrome, jsonl_path = write_run_trace(tracer, str(target), billing=billing)
    return jsonl_path


def test_cli_summary(jsonl_file, capsys):
    assert cli_main(["summary", jsonl_file]) == 0
    out = capsys.readouterr().out
    assert "cost attribution by category" in out
    assert "straggler report" in out


@pytest.mark.parametrize("by", ["category", "phase", "worker", "function"])
def test_cli_cost_groupings(jsonl_file, capsys, by):
    assert cli_main(["cost", jsonl_file, "--by", by]) == 0
    out = capsys.readouterr().out
    assert f"cost attribution by {by}" in out
    assert "bill total" in out


def test_cli_chrome_reexport(jsonl_file, tmp_path, capsys):
    out_path = tmp_path / "re.json"
    assert cli_main(["chrome", jsonl_file, "-o", str(out_path)]) == 0
    with open(out_path) as fh:
        doc = json.load(fh)
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_cli_errors(tmp_path, capsys):
    assert cli_main([]) == 2  # no subcommand: help + error exit
    missing = str(tmp_path / "nope.jsonl")
    assert cli_main(["summary", missing]) == 2
    assert "cannot read trace" in capsys.readouterr().err
    # a trace without billing records can't be costed
    bare = tmp_path / "bare.jsonl"
    bare.write_text('{"kind": "meta", "version": 1, "n_spans": 0, "n_events": 0}\n')
    assert cli_main(["cost", str(bare)]) == 2
    assert "no billing records" in capsys.readouterr().err
