"""Regression tests: the reintegration deadline is a JobConfig knob.

The give-up deadline for fetching a departed peer's replica used to be a
module-level constant in ``repro.core.worker``; it now lives on
:class:`JobConfig` (``reintegrate_deadline_s``) so fault-tolerant runs
can tune it.  These tests pin the default, the validation, and — by
driving the ``_reintegrate`` machine directly — that the configured
value is what actually bounds the polling loop.
"""

from types import SimpleNamespace

import pytest

from repro.core import JobConfig
import repro.core.worker as worker_mod
from repro.core.worker import _reintegrate
from repro.ml.data import MLPSpec, mlp_synth
from repro.ml.models import LayeredMLP
from repro.ml.optim import Adam


def config(**overrides):
    spec = MLPSpec(n_samples=400, n_features=4, hidden=(4,), batch_size=100)
    kwargs = dict(
        model=LayeredMLP([4, 4, 1]),
        make_optimizer=lambda: Adam(lr=0.01),
        dataset=mlp_synth(spec, seed=1),
        n_workers=2,
        significance_v=0.5,  # v > 0: reintegration actually runs
        max_steps=5,
        fault_tolerance=True,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


# -- config surface ----------------------------------------------------------


def test_default_deadline_is_60s():
    assert config().reintegrate_deadline_s == 60.0


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_non_positive_deadline_rejected(bad):
    with pytest.raises(ValueError, match="reintegrate_deadline_s"):
        config(reintegrate_deadline_s=bad)


def test_no_module_level_constant_remains():
    # the knob was hoisted into JobConfig; a resurrected module constant
    # would silently shadow the configured value
    assert not hasattr(worker_mod, "_REINTEGRATE_DEADLINE_S")


# -- the machine honors the configured deadline ------------------------------


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


def drive_reintegrate(cfg, replica_after=None):
    """Drive ``_reintegrate`` by hand: kv_exists False until the Nth poll.

    Returns ``(elapsed_sim_time, recoveries, averaged)``.
    """
    clock = FakeClock()
    sv = SimpleNamespace(
        kv_exists=lambda key: ("kv_exists", key),
        kv_get=lambda key: ("kv_get", key),
        sleep=lambda d: ("sleep", d),
    )
    recoveries = []
    runtime = SimpleNamespace(
        config=cfg,
        replica_key=lambda step, peer: f"replica/{step}/{peer}",
        note_recovery=recoveries.append,
    )
    averaged = []
    state = SimpleNamespace(
        pending_replica=(3, 1),
        params=SimpleNamespace(average_with=averaged.append),
    )
    machine = _reintegrate(SimpleNamespace(clock=clock, services=sv), runtime, state)
    polls = 0
    try:
        token = next(machine)
        while True:
            kind = token[0]
            if kind == "kv_exists":
                polls += 1
                exists = replica_after is not None and polls > replica_after
                token = machine.send(exists)
            elif kind == "sleep":
                clock.t += token[1]
                token = machine.send(None)
            elif kind == "kv_get":
                token = machine.send("the-replica")
            else:  # pragma: no cover - protocol drift guard
                raise AssertionError(f"unexpected token {token!r}")
    except StopIteration:
        pass
    return clock.t, recoveries, averaged


@pytest.mark.parametrize("deadline", [0.05, 0.2])
def test_configured_deadline_bounds_the_polling_loop(deadline):
    elapsed, recoveries, averaged = drive_reintegrate(
        config(reintegrate_deadline_s=deadline)
    )
    # gives up at the first poll past the deadline (0.01 s poll interval)
    assert deadline <= elapsed <= deadline + 0.02
    assert recoveries == ["reintegration_skipped"]
    assert averaged == []


def test_replica_arriving_in_time_is_averaged():
    elapsed, recoveries, averaged = drive_reintegrate(
        config(reintegrate_deadline_s=1.0), replica_after=3
    )
    assert elapsed < 1.0
    assert recoveries == []
    assert averaged == ["the-replica"]


def test_bsp_skips_reintegration_entirely():
    _, recoveries, averaged = drive_reintegrate(config(significance_v=0.0))
    assert recoveries == []
    assert averaged == []
