"""Unit tests for the alternative update filters (ablation machinery)."""

import numpy as np
import pytest

from repro.core.filters import DropInsignificantFilter, TopKFilter
from repro.ml import ModelUpdate, ParameterSet
from repro.ml.sparse import SparseDelta


def params_with(w):
    return ParameterSet({"w": np.asarray(w, dtype=np.float64)})


def update_with(indices, values, size=6):
    return ModelUpdate(
        {"w": SparseDelta(np.asarray(indices), np.asarray(values, float), (size,))}
    )


# ------------------------------------------------------------------- drop
def test_drop_filter_discards_insignificant():
    filt = DropInsignificantFilter(0.5, {"w": (6,)})
    p = params_with([1.0] * 6)
    out = filt.step(p, update_with([0, 1], [0.9, 0.1]), t=1)
    assert list(out["w"].indices) == [0]
    # Nothing accumulated: the 0.1 is gone forever.
    assert np.all(filt.accumulated["w"] == 0.0)


def test_drop_filter_v_zero_passes_everything():
    filt = DropInsignificantFilter(0.0, {"w": (6,)})
    p = params_with([1.0] * 6)
    out = filt.step(p, update_with([2, 4], [0.001, -0.002]), t=1)
    assert set(out["w"].indices) == {2, 4}


def test_drop_filter_never_resends():
    filt = DropInsignificantFilter(0.5, {"w": (1,)})
    p = params_with([1.0])
    total_sent = 0
    for t in range(1, 10):
        out = filt.step(p, update_with([0], [0.2], size=1), t=t)
        total_sent += out["w"].nnz
    # Unlike ISP, repeated small updates never become significant.
    # (v_t decays, so very late steps may pass; within 10 steps v_t ~ 0.16
    # and |0.2/1.0| = 0.2 passes from t where 0.5/sqrt(t) < 0.2 -> t >= 7.)
    assert total_sent < 9


# ------------------------------------------------------------------ top-k
def test_topk_selects_largest_absolute_entries():
    filt = TopKFilter(0.5, {"w": (6,)})
    p = params_with([1.0] * 6)
    out = filt.step(p, update_with([0, 1, 2, 3], [0.1, -0.9, 0.5, 0.2]), t=1)
    assert set(out["w"].indices) == {1, 2}
    # The rest stays accumulated.
    acc = filt.accumulated["w"]
    assert acc[0] == pytest.approx(0.1) and acc[3] == pytest.approx(0.2)


def test_topk_accumulates_until_selected():
    filt = TopKFilter(0.5, {"w": (2,)})
    p = params_with([1.0, 1.0])
    filt.step(p, update_with([0, 1], [0.1, 0.9], size=2), t=1)
    out = filt.step(p, update_with([0, 1], [0.8, 0.01], size=2), t=2)
    # Index 0 accumulated 0.9 total, now the largest -> broadcast whole
    # history in one delta.
    assert 0 in set(out["w"].indices)
    idx = list(out["w"].indices).index(0)
    assert out["w"].values[idx] == pytest.approx(0.9)


def test_topk_conservation():
    rng = np.random.default_rng(0)
    filt = TopKFilter(0.3, {"w": (20,)})
    p = params_with(rng.normal(size=20))
    total = np.zeros(20)
    sent = np.zeros(20)
    for t in range(1, 15):
        dense = rng.normal(size=20) * (rng.random(20) < 0.4)
        total += dense
        out = filt.step(p, ModelUpdate({"w": SparseDelta.from_dense(dense)}), t)
        out["w"].apply_to(sent)
    np.testing.assert_allclose(sent + filt.accumulated["w"], total, atol=1e-12)


def test_topk_validates_fraction():
    with pytest.raises(ValueError):
        TopKFilter(0.0, {"w": (2,)})
    with pytest.raises(ValueError):
        TopKFilter(1.5, {"w": (2,)})


def test_topk_empty_accumulator():
    filt = TopKFilter(0.5, {"w": (4,)})
    p = params_with([1.0] * 4)
    out = filt.extract_significant(p, t=1)
    assert out.is_empty()


# ---------------------------------------------------------- job integration
def test_custom_filter_factory_used_in_run():
    from repro import JobConfig, run_mlless
    from repro.ml.data import MovieLensSpec, movielens_like
    from repro.ml.models import PMF
    from repro.ml.optim import SGD

    spec = MovieLensSpec(n_users=40, n_movies=30, n_ratings=1500, batch_size=250)
    ds = movielens_like(spec, seed=0)
    config = JobConfig(
        model=PMF(40, 30, rank=3, rating_offset=3.5),
        make_optimizer=lambda: SGD(lr=0.5),
        dataset=ds,
        n_workers=3,
        significance_v=0.7,
        target_loss=-1.0,
        max_steps=12,
        seed=0,
        make_filter=lambda shapes: TopKFilter(0.25, shapes),
    )
    result = run_mlless(config)
    assert result.total_steps == 12
