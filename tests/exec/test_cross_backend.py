"""Cross-backend convergence: the same machines, simulated vs real threads.

The worker's parameter evolution is deterministic on both backends (same
seeded init, barrier releases list senders in sorted order, peer updates
apply in that order), so sim and local must land on the same final loss
to tight tolerance.  Scheduling is NOT reproduced — the local backend
reports genuine wall-clock timings, which is the point.
"""

import numpy as np
import pytest

from repro import JobConfig, run_mlless
from repro.ml.data import (
    CriteoSpec,
    MLPSpec,
    MovieLensSpec,
    criteo_like,
    mlp_synth,
    movielens_like,
)
from repro.ml.models import PMF, LayeredMLP, LogisticRegression
from repro.ml.optim import Adam, InverseSqrtLR, MomentumSGD

#: worker math is identical; supervisor-side mean-loss aggregation may
#: differ at float ulp level with report arrival order
LOSS_TOL = 1e-9


def pmf_config(**overrides):
    spec = MovieLensSpec(
        n_users=80, n_movies=60, n_ratings=4_000, rank=3, batch_size=500
    )
    kwargs = dict(
        model=PMF(spec.n_users, spec.n_movies, rank=4, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9),
        dataset=movielens_like(spec, seed=2),
        n_workers=3,
        significance_v=0.5,
        target_loss=None,
        max_steps=20,
        seed=0,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def lr_config():
    spec = CriteoSpec(
        n_samples=4_000, n_hash_buckets=1_000, batch_size=500
    )
    return JobConfig(
        model=LogisticRegression(spec.n_numeric + spec.n_hash_buckets, l2=1e-5),
        make_optimizer=lambda: Adam(lr=0.02),
        dataset=criteo_like(spec, seed=3),
        n_workers=2,
        significance_v=0.3,
        target_loss=None,
        max_steps=15,
        seed=1,
    )


def test_pmf_sim_and_local_reach_same_final_loss():
    sim = run_mlless(pmf_config())
    local = run_mlless(pmf_config(), backend="local")
    assert sim.total_steps == local.total_steps == 20
    assert local.final_loss == pytest.approx(sim.final_loss, abs=LOSS_TOL)
    # Per-step losses must agree too, not just the endpoint.
    _, sim_losses = sim.monitor.series("loss_by_step").as_arrays()
    _, local_losses = local.monitor.series("loss_by_step").as_arrays()
    np.testing.assert_allclose(local_losses, sim_losses, atol=LOSS_TOL)


def mlp_config():
    spec = MLPSpec(n_samples=2_000, n_features=16, hidden=(12,), batch_size=250)
    return JobConfig(
        model=LayeredMLP([spec.n_features, 16, 8, spec.n_outputs]),
        make_optimizer=lambda: Adam(lr=0.01),
        dataset=mlp_synth(spec, seed=4),
        n_workers=2,
        significance_v=0.0,
        target_loss=None,
        max_steps=15,
        seed=2,
    )


def test_lr_sim_and_local_reach_same_final_loss():
    sim = run_mlless(lr_config())
    local = run_mlless(lr_config(), backend="local")
    assert sim.total_steps == local.total_steps == 15
    assert local.final_loss == pytest.approx(sim.final_loss, abs=LOSS_TOL)


def test_mlp_sim_and_local_reach_same_final_loss():
    # Dense data parallelism: both workers hold the full LayeredMLP and
    # exchange dense deltas through the barrier, same as the sparse jobs.
    sim = run_mlless(mlp_config())
    local = run_mlless(mlp_config(), backend="local")
    assert sim.total_steps == local.total_steps == 15
    assert local.final_loss == pytest.approx(sim.final_loss, abs=LOSS_TOL)
    _, sim_losses = sim.monitor.series("loss_by_step").as_arrays()
    _, local_losses = local.monitor.series("loss_by_step").as_arrays()
    np.testing.assert_allclose(local_losses, sim_losses, atol=LOSS_TOL)


def test_local_run_reports_genuine_wall_clock():
    result = run_mlless(pmf_config(max_steps=10), backend="local")
    assert result.system == "mlless-local"
    assert result.total_steps == 10
    # Real elapsed seconds: positive, and small for a tiny job — a sim
    # timestamp leaking through would report tens of simulated seconds.
    assert 0.0 < result.exec_time < 30.0
    assert result.total_cost == 0.0  # no billed platform
    assert result.mean_step_duration() > 0.0


def test_local_ssp_trains_end_to_end():
    config = pmf_config(
        sync="ssp", ssp_staleness=2, n_workers=3, max_steps=15
    )
    result = run_mlless(config, backend="local")
    # SSP applies peer updates in arrival order, which is scheduling-
    # dependent locally — assert progress, not bit-equality.
    assert result.total_steps == 15
    assert np.isfinite(result.final_loss)
    assert result.final_loss < 1.0


def test_local_backend_rejects_sim_only_arguments():
    from repro.experiments.common import build_world

    with pytest.raises(ValueError, match="simulation world"):
        run_mlless(pmf_config(), world=build_world(seed=0), backend="local")
    with pytest.raises(ValueError, match="unknown backend"):
        run_mlless(pmf_config(), backend="cloud")


# -- procs backend ----------------------------------------------------------


def test_pmf_sim_and_procs_reach_same_final_loss():
    sim = run_mlless(pmf_config())
    procs = run_mlless(pmf_config(), backend="procs")
    assert sim.total_steps == procs.total_steps == 20
    assert procs.final_loss == pytest.approx(sim.final_loss, abs=LOSS_TOL)
    # Per-step losses must agree too — gradients crossed process
    # boundaries through the shared-memory arena on every step.
    _, sim_losses = sim.monitor.series("loss_by_step").as_arrays()
    _, procs_losses = procs.monitor.series("loss_by_step").as_arrays()
    np.testing.assert_allclose(procs_losses, sim_losses, atol=LOSS_TOL)


def test_lr_sim_and_procs_reach_same_final_loss():
    sim = run_mlless(lr_config())
    procs = run_mlless(lr_config(), backend="procs")
    assert sim.total_steps == procs.total_steps == 15
    assert procs.final_loss == pytest.approx(sim.final_loss, abs=LOSS_TOL)


def test_procs_run_reports_genuine_wall_clock():
    result = run_mlless(pmf_config(max_steps=10), backend="procs")
    assert result.system == "mlless-procs"
    assert result.total_steps == 10
    assert 0.0 < result.exec_time < 60.0
    assert result.total_cost == 0.0  # no billed platform
    # Every worker process must have exited within the drain grace.
    assert result.extras["workers_drained"] == 3.0


def test_procs_ssp_trains_end_to_end():
    # SSP skips the shared-memory arena (staleness breaks the
    # parity-slot argument) and ships updates pickled; assert progress,
    # not bit-equality, as with local SSP.
    config = pmf_config(
        sync="ssp", ssp_staleness=2, n_workers=3, max_steps=15
    )
    result = run_mlless(config, backend="procs")
    assert result.total_steps == 15
    assert np.isfinite(result.final_loss)
    assert result.final_loss < 1.0


def test_procs_backend_rejects_sim_only_arguments():
    from repro.experiments.common import build_world

    with pytest.raises(ValueError, match="simulation world"):
        run_mlless(pmf_config(), world=build_world(seed=0), backend="procs")
