"""Tests for the shared deadline helper (``repro.exec.deadline``).

The helper exists to make one bug class impossible: handing each of N
sequential blocking calls its *own* budget, so a stuck run costs
N x budget instead of budget.  The tests pin the shared-budget
semantics with a fake clock, and — the regression the refactor was for —
assert the real backends stay LOCK-rule clean, so every blocking call in
``exec/`` is deadline-bounded.
"""

from pathlib import Path

import pytest

from repro.exec.deadline import Deadline


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_remaining_counts_down_and_clamps_at_zero():
    clock = FakeClock()
    deadline = Deadline(10.0, clock=clock)
    assert deadline.remaining() == 10.0
    clock.advance(4.0)
    assert deadline.remaining() == 6.0
    clock.advance(7.0)  # past expiry
    assert deadline.remaining() == 0.0  # clamped, never negative
    assert deadline.expired()


def test_not_expired_until_budget_elapses():
    clock = FakeClock()
    deadline = Deadline(5.0, clock=clock)
    assert not deadline.expired()
    clock.advance(5.0)
    assert deadline.expired()


def test_zero_budget_is_immediately_expired():
    deadline = Deadline(0.0, clock=FakeClock())
    assert deadline.expired()
    assert deadline.remaining() == 0.0


def test_negative_budget_is_rejected():
    with pytest.raises(ValueError):
        Deadline(-1.0, clock=FakeClock())


def test_one_deadline_bounds_a_whole_join_loop():
    """The drain-loop pattern: N joins share ONE budget.  Total wait is
    bounded by the budget no matter how many participants stall."""
    clock = FakeClock()
    deadline = Deadline(30.0, clock=clock)
    waited = []
    for _ in range(8):  # 8 stuck workers, each eats what's left
        grant = deadline.remaining()
        waited.append(grant)
        clock.advance(min(grant, 12.0))  # a stalling join consumes its grant
    assert sum(min(w, 12.0) for w in waited) == pytest.approx(30.0)
    assert waited[0] == 30.0 and waited[3] == 0.0  # later joins get nothing
    assert deadline.expired()


def test_budget_attribute_survives_for_error_messages():
    deadline = Deadline(120.0, clock=FakeClock())
    assert deadline.budget_s == 120.0


def test_exec_backends_stay_lock_clean():
    """LOCK103 regression for the deadline refactor: every blocking call
    in the host-concurrency modules must be bounded.  Runs the real
    analyzer over the real tree — an unbounded ``get()``/``join()``
    reintroduced in exec/local.py or exec/procs.py fails here."""
    from repro.analysis import analyze_paths, load_config

    root = Path(__file__).resolve().parents[2]
    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([root / "src" / "repro"], config=config)
    lock = [f for f in findings if f.rule.startswith("LOCK")]
    details = "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in lock)
    assert lock == [], f"LOCK findings in exec backends:\n{details}"
