"""Unit tests for the process backend's substrate (``repro.exec.procs``).

End-to-end convergence parity with the sim backend lives in
``test_cross_backend.py``; here the pieces are exercised in isolation:
the shared-memory arena layout, the control-server KV/exchange
semantics, queue sealing, the relaunch/resume protocol, and — the
property the parent-held KV server exists to provide — checkpoints
surviving the death of a role process.
"""

import multiprocessing as mp
import os
import queue
import time

import numpy as np
import pytest

from repro.exec.local import LocalObjectStore
from repro.exec.procs import (
    ProcKVClient,
    ProcMessageQueue,
    ProcServices,
    ShmArena,
    _ControlServer,
    _role_main,
    _SHM_DENSE,
    _SHM_UPDATE,
    _shm_route,
    run_procs_job,
)
from repro.ml.parameters import ModelUpdate, ParameterSet
from repro.ml.sparse import SparseDelta
from repro.storage.errors import KeyNotFound, StorageError

SHAPES = {"U": (6, 3), "b": (4,)}


def _update(scale=1.0):
    return ModelUpdate(
        {
            "U": SparseDelta(
                np.array([0, 5, 11], dtype=np.int64),
                np.array([1.5, -2.0, 0.25]) * scale,
                (6, 3),
            ),
            "b": SparseDelta(
                np.array([2], dtype=np.int64), np.array([3.0]) * scale, (4,)
            ),
        }
    )


# ------------------------------------------------------------- ShmArena
@pytest.fixture
def make_arena():
    """Arena factory that unlinks at teardown, *after* test locals are
    freed — closing while zero-copy views are alive raises BufferError
    (the production parent never resolves descriptors, so it closes
    view-free; the tests do resolve, hence the deferred close)."""
    import gc

    arenas = []

    def factory(shapes, n_workers):
        arena = ShmArena(shapes, n_workers)
        arenas.append(arena)
        return arena

    yield factory
    gc.collect()
    for arena in arenas:
        arena.close(unlink=True)


def test_arena_update_roundtrip_is_exact_and_zero_copy(make_arena):
    arena = make_arena(SHAPES, n_workers=2)
    update = _update()
    descriptor = arena.write_update(1, 0, update)
    assert descriptor[0] == _SHM_UPDATE
    got = arena.read_update(descriptor)
    for (name, want), (name2, have) in zip(update, got):
        assert name == name2
        np.testing.assert_array_equal(have.indices, want.indices)
        np.testing.assert_array_equal(have.values, want.values)
        assert have.shape == want.shape
        assert have.has_sorted_unique_indices
    # Zero-copy: the read deltas are views over the shared block, so
    # rewriting the slot changes values already handed out.
    arena.write_update(1, 0, _update(scale=2.0))
    np.testing.assert_array_equal(got["U"].values, [3.0, -4.0, 0.5])


def test_arena_parity_slots_are_independent(make_arena):
    arena = make_arena(SHAPES, n_workers=1)
    even = arena.write_update(0, 0, _update(scale=1.0))
    odd = arena.write_update(0, 1, _update(scale=10.0))
    np.testing.assert_array_equal(
        arena.read_update(even)["U"].values, [1.5, -2.0, 0.25]
    )
    np.testing.assert_array_equal(
        arena.read_update(odd)["U"].values, [15.0, -20.0, 2.5]
    )


def test_arena_dense_roundtrip(make_arena):
    arena = make_arena(SHAPES, n_workers=2)
    params = ParameterSet(
        {
            "U": np.arange(18, dtype=np.float64).reshape(6, 3),
            "b": np.array([9.0, 8.0, 7.0, 6.0]),
        }
    )
    descriptor = arena.write_dense(0, params)
    assert descriptor[0] == _SHM_DENSE
    got = arena.read_dense(descriptor)
    assert got.shapes() == params.shapes()
    for name, tensor in params:
        np.testing.assert_array_equal(got[name], tensor)


def test_arena_rejects_oversized_and_unknown_tensors(make_arena):
    arena = make_arena({"b": (2,)}, n_workers=1)
    too_big = ModelUpdate(
        {
            "b": SparseDelta._trusted(
                np.array([0, 1, 1], dtype=np.int64),
                np.ones(3),
                (2,),
                sorted_unique=False,
            )
        }
    )
    with pytest.raises(StorageError, match="nnz"):
        arena.write_update(0, 0, too_big)
    unknown = ModelUpdate(
        {"w": SparseDelta(np.array([0], dtype=np.int64), np.ones(1), (2,))}
    )
    with pytest.raises(StorageError, match="not negotiated"):
        arena.write_update(0, 0, unknown)


def test_shm_route_classification():
    update, params = _update(), ParameterSet({"b": np.zeros(4)})
    assert _shm_route("upd/7/2", update) == (_SHM_UPDATE, 7, 2)
    assert _shm_route("departed/3/1", params) == (_SHM_DENSE, 3, 1)
    # Wrong payload type, wrong arity, non-integer parts: all pickled.
    assert _shm_route("upd/7/2", params) is None
    assert _shm_route("departed/3/1", update) is None
    assert _shm_route("upd/7", update) is None
    assert _shm_route("ckpt/worker/0", {"step": 5}) is None
    assert _shm_route("model", update) is None


# ------------------------------------------------- control server + KV
@pytest.fixture
def control():
    """In-process control server over plain thread-safe queues."""
    request_q = queue.Queue()
    reply_qs = [queue.Queue() for _ in range(3)]
    server = _ControlServer(request_q, reply_qs, [])
    server.start()
    yield request_q, reply_qs
    server.stop()
    server.join(timeout=5.0)
    assert not server.is_alive()


def test_kv_client_verbs(control):
    request_q, reply_qs = control
    kv = ProcKVClient(0, request_q, reply_qs[0])
    kv.set("model", {"step": 3})
    assert kv.exists("model")
    assert kv.get("model") == {"step": 3}
    assert kv.get_or_none("model") == {"step": 3}
    assert kv.get_or_none("nope") is None
    with pytest.raises(KeyNotFound):
        kv.get("nope")
    kv.delete("model")
    # delete is fire-and-forget; a follow-up round trip orders after it
    assert kv.get_or_none("model") is None
    assert not kv.exists("model")


def test_exchange_bindings_are_shared_across_clients(control):
    request_q, reply_qs = control
    a = ProcKVClient(0, request_q, reply_qs[0])
    b = ProcKVClient(1, request_q, reply_qs[1])
    a.bind("worker-q-0")
    b.bind("worker-q-1")
    a.bind("worker-q-0")  # idempotent
    assert a.bindings() == b.bindings() == ["worker-q-0", "worker-q-1"]
    b.unbind("worker-q-0")
    assert a.bindings() == ["worker-q-1"]


def test_broadcast_fans_out_excluding_sender(control):
    request_q, reply_qs = control
    ctx = mp.get_context("fork")
    mq = ProcMessageQueue(ctx)
    for name in ("wq-0", "wq-1", "wq-2"):
        mq.declare(name)
    mq.seal()
    kv = ProcKVClient(0, request_q, reply_qs[0])
    services = ProcServices(LocalObjectStore(), kv, mq)
    for name in ("wq-0", "wq-1", "wq-2"):
        kv.bind(name)
    services.broadcast({"kind": "update"}, exclude="wq-1")()
    assert mq.consume_with_timeout("wq-0", 5.0) == {"kind": "update"}
    assert mq.consume_with_timeout("wq-2", 5.0) == {"kind": "update"}
    assert mq.consume_with_timeout("wq-1", 0.0) is None


# ------------------------------------------------------- message queues
def test_queue_declare_after_seal_is_rejected():
    mq = ProcMessageQueue(mp.get_context("fork"))
    mq.declare("early")
    mq.seal()
    mq.declare("early")  # re-declare of an existing queue stays legal
    with pytest.raises(StorageError, match="after spawn"):
        mq.declare("late")
    with pytest.raises(StorageError, match="never declared"):
        mq.consume_with_timeout("late", 0.0)


def test_queue_timeout_consume_and_drain():
    mq = ProcMessageQueue(mp.get_context("fork"))
    mq.declare("q")
    mq.seal()
    assert mq.consume_with_timeout("q", 0.0) is None
    for i in range(3):
        mq.publish("q", {"i": i})
    assert mq.consume_with_timeout("q", 5.0) == {"i": 0}
    assert mq.consume_with_timeout("q", 5.0) == {"i": 1}
    # mp.Queue's feeder thread flushes asynchronously, so drain() may
    # see the last item late; poll with a real deadline.
    out, deadline = [], time.monotonic() + 10.0
    while not out and time.monotonic() < deadline:
        out = mq.drain("q")
        time.sleep(0.01)
    assert out == [{"i": 2}]
    assert mq.drain("q") == []


# ----------------------------------------------------- relaunch / resume
def _relaunching_loop(ectx, payload):
    if not payload.get("resume"):
        return {"outcome": "relaunch"}
    return {"outcome": "done", "resumed": True}
    yield  # makes this a generator machine; never reached


def test_role_main_reenters_on_relaunch_marker():
    results_q = queue.Queue()
    _role_main(_relaunching_loop, None, {}, "worker-0", results_q)
    role, result, monitor = results_q.get(timeout=5.0)
    assert role == "worker-0"
    assert result == {"outcome": "done", "resumed": True}
    assert monitor is None


def _write_ckpt_and_die(kv):
    kv.set("ckpt/worker/0", {"step": 5, "note": "pre-crash"})
    os._exit(17)  # simulate a kill: no exception, no cleanup


def _resume_from_ckpt(kv, out_q, go):
    go.wait(timeout=120.0)
    out_q.put(kv.get("ckpt/worker/0"))


def test_checkpoint_survives_role_process_death():
    """A checkpoint written through the parent-held KV server outlives
    the writer process; a replacement process resumes from it."""
    ctx = mp.get_context("fork")
    request_q = ctx.Queue()
    reply_qs = [ctx.Queue() for _ in range(2)]
    out_q = ctx.Queue()
    go = ctx.Event()
    victim_kv = ProcKVClient(0, request_q, reply_qs[0])
    resumer_kv = ProcKVClient(1, request_q, reply_qs[1])

    victim = ctx.Process(target=_write_ckpt_and_die, args=(victim_kv,), daemon=True)
    resumer = ctx.Process(
        target=_resume_from_ckpt, args=(resumer_kv, out_q, go), daemon=True
    )
    # Both children fork BEFORE the control-server thread starts — the
    # same fork-then-threads invariant the backend itself keeps.  The
    # resumer is gated on `go` so its read still happens strictly after
    # the writer's death.
    victim.start()
    resumer.start()
    server = _ControlServer(request_q, reply_qs, [])
    server.start()
    try:
        victim.join(timeout=30.0)
        assert victim.exitcode == 17
        go.set()
        assert out_q.get(timeout=30.0) == {"step": 5, "note": "pre-crash"}
        resumer.join(timeout=30.0)
        assert resumer.exitcode == 0
    finally:
        for proc in (victim, resumer):
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        server.stop()
        server.join(timeout=5.0)


# ------------------------------------------------------ concurrent puts
def _put_worker_keys(kv, worker, n_keys, out_q):
    for i in range(n_keys):
        kv.set(f"k/{worker}/{i}", worker * 1000 + i)
    out_q.put(worker)


def test_concurrent_kv_puts_from_processes():
    """Several processes hammer the control server at once; every write
    lands (the single-threaded server serializes them)."""
    n_procs, n_keys = 3, 20
    ctx = mp.get_context("fork")
    request_q = ctx.Queue()
    reply_qs = [ctx.Queue() for _ in range(n_procs + 1)]
    out_q = ctx.Queue()
    writers = [
        ctx.Process(
            target=_put_worker_keys,
            args=(ProcKVClient(w, request_q, reply_qs[w]), w, n_keys, out_q),
            daemon=True,
        )
        for w in range(n_procs)
    ]
    for proc in writers:
        proc.start()
    server = _ControlServer(request_q, reply_qs, [])
    server.start()
    try:
        done = sorted(out_q.get(timeout=30.0) for _ in range(n_procs))
        assert done == list(range(n_procs))
        parent = ProcKVClient(n_procs, request_q, reply_qs[n_procs])
        for w in range(n_procs):
            for i in range(n_keys):
                assert parent.get(f"k/{w}/{i}") == w * 1000 + i
    finally:
        for proc in writers:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        server.stop()
        server.join(timeout=5.0)


# -------------------------------------------------------------- guards
def test_procs_rejects_fault_profiles():
    from types import SimpleNamespace

    from repro.faults import FAULT_PROFILES

    profile = next(p for p in FAULT_PROFILES.values() if not p.is_noop())
    with pytest.raises(ValueError, match="cannot inject faults"):
        run_procs_job(SimpleNamespace(faults=profile))
