"""DES digest-invariance regression across the backend seam.

The backend-neutral refactor (machines yielding service-call tokens,
driven by ``repro.exec.sim``) must be **bit-identical** to the old
direct-DES handlers: same event schedule, same RNG draw order, same
monitor trace.  These digests were captured on the pre-refactor tree;
any change to them means the sim backend stopped being a faithful
adapter — that is a bug in the adapter, never an "expected update".
"""

import pytest

from repro.analysis.determinism import check_determinism, default_run
from repro.core import JobConfig, MLLessDriver
from repro.experiments.common import build_world, make_runtime
from repro.faults import FAULT_PROFILES
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD

# sha256 monitor-trace digests captured on the pre-refactor tree
# (direct-DES handlers, commit 29753ed).
ORACLE_DIGESTS = {
    0: "9baab87af2decab7bf2ff954431fd4c9373b76ccea93268722cae0242a097578",
    7: "4d0e0dcebc52201e2abb916afb913e1c533555cdeaed3c5b5ad67028810cdc9c",
}

VARIANT_DIGESTS = {
    "bsp": "9baab87af2decab7bf2ff954431fd4c9373b76ccea93268722cae0242a097578",
    "ssp": "e9f1ac90b2c24927e5f83c3468e69fccc9e313deef31128bec730d5625da024c",
    "bsp_chaos": "07b9ede16a80c8fdf022219c168bdc4b08f4950d438aa5ab76014e1ddcbb35e9",
    "bsp_v0": "c6120090d63b1129934828fd3713e07a1bc295568eaa6940374f1d5f733724ed",
}


def _variant_digest(sync="bsp", faults=None, v=0.5):
    """The determinism-oracle job, parameterized like the capture script."""
    spec = MovieLensSpec(
        n_users=60, n_movies=50, n_ratings=3_000, rank=3, batch_size=400
    )
    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=4, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9),
        dataset=movielens_like(spec, seed=2),
        n_workers=3,
        significance_v=v,
        sync=sync,
        target_loss=None,
        max_steps=25,
        seed=0,
        faults=faults,
    )
    world = build_world(seed=config.seed, faults=faults)
    runtime = make_runtime(world, config)
    runtime.monitor.enable_trace()
    MLLessDriver(world.env, world.platform, runtime, meter=world.meter).run()
    return runtime.monitor.trace_digest()


@pytest.mark.parametrize("seed", sorted(ORACLE_DIGESTS))
def test_oracle_digest_matches_pre_refactor(seed):
    monitor = default_run(seed)
    assert monitor.trace_digest() == ORACLE_DIGESTS[seed]


def test_bsp_digest_matches_pre_refactor():
    assert _variant_digest(sync="bsp") == VARIANT_DIGESTS["bsp"]


def test_ssp_digest_matches_pre_refactor():
    # SSP rides the shared train_step now; its schedule must not have moved.
    assert _variant_digest(sync="ssp") == VARIANT_DIGESTS["ssp"]


def test_faulted_digest_matches_pre_refactor():
    # Fault injection exercises machine.throw delivery (crashes, storage
    # errors, resyncs) — the recovery paths must replay identically.
    assert (
        _variant_digest(sync="bsp", faults=FAULT_PROFILES["chaos"])
        == VARIANT_DIGESTS["bsp_chaos"]
    )


def test_bsp_v0_digest_matches_pre_refactor():
    assert _variant_digest(sync="bsp", v=0.0) == VARIANT_DIGESTS["bsp_v0"]


def test_oracle_still_deterministic_run_to_run():
    report = check_determinism(seed=0, runs=2)
    assert report.ok, report.divergence
