"""Unit tests for the local backend's queue/KV/exchange/drive semantics,
including behavior under real thread concurrency."""

import threading
import time

import pytest

from repro.exec.local import (
    LocalClock,
    LocalExchange,
    LocalKVStore,
    LocalMessageQueue,
    LocalObjectStore,
    LocalServices,
    drive,
    run_local_job,
)
from repro.storage.errors import KeyNotFound, StorageError


# -- message queue ---------------------------------------------------------

def test_mq_fifo_order():
    mq = LocalMessageQueue()
    mq.declare("q")
    for i in range(10):
        mq.publish("q", {"i": i})
    assert [mq.consume("q")["i"] for _ in range(10)] == list(range(10))


def test_mq_consume_blocks_until_publish():
    mq = LocalMessageQueue()
    mq.declare("q")

    def late_publish():
        time.sleep(0.05)
        mq.publish("q", {"msg": "hello"})

    threading.Thread(target=late_publish, daemon=True).start()
    start = time.monotonic()
    message = mq.consume("q")
    assert message == {"msg": "hello"}
    assert time.monotonic() - start >= 0.04  # genuinely waited


def test_mq_consume_with_timeout_returns_none_when_empty():
    mq = LocalMessageQueue()
    mq.declare("q")
    start = time.monotonic()
    assert mq.consume_with_timeout("q", 0.05) is None
    assert time.monotonic() - start >= 0.04


def test_mq_drain_empties_without_blocking():
    mq = LocalMessageQueue()
    mq.declare("q")
    mq.publish("q", {"i": 1})
    mq.publish("q", {"i": 2})
    assert [m["i"] for m in mq.drain("q")] == [1, 2]
    assert mq.drain("q") == []


def test_mq_undeclared_queue_raises():
    mq = LocalMessageQueue()
    with pytest.raises(StorageError):
        mq.publish("nope", {})


# -- KV store --------------------------------------------------------------

def test_kv_semantics_match_simulated_store():
    kv = LocalKVStore()
    kv.set("a", 1)
    assert kv.get("a") == 1
    assert kv.exists("a")
    assert kv.get_or_none("missing") is None
    with pytest.raises(KeyNotFound):
        kv.get("missing")
    kv.delete("a")
    assert not kv.exists("a")
    kv.delete("a")  # idempotent


def test_kv_concurrent_writers_lose_nothing():
    kv = LocalKVStore()
    n_threads, n_keys = 8, 50

    def writer(tid):
        for k in range(n_keys):
            kv.set(f"{tid}/{k}", (tid, k))

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    for t in range(n_threads):
        for k in range(n_keys):
            assert kv.get(f"{t}/{k}") == (t, k)


# -- object store ----------------------------------------------------------

def test_cos_preload_and_get():
    cos = LocalObjectStore()
    cos.preload("bucket", "key", [1, 2, 3])
    assert cos.get("bucket", "key") == [1, 2, 3]
    with pytest.raises(KeyNotFound):
        cos.get("bucket", "missing")


# -- exchange --------------------------------------------------------------

def test_exchange_broadcast_with_exclude_and_unbind():
    mq = LocalMessageQueue()
    ex = LocalExchange(mq)
    for name in ("a", "b", "c"):
        mq.declare(name)
        ex.bind(name)

    ex.publish({"n": 1}, exclude="b")
    assert mq.drain("a") == [{"n": 1}]
    assert mq.drain("b") == []
    assert mq.drain("c") == [{"n": 1}]

    ex.unbind("c")
    ex.publish({"n": 2})
    assert mq.drain("a") == [{"n": 2}]
    assert mq.drain("c") == []

    ex.bind("a")  # double bind must not double-deliver
    ex.publish({"n": 3})
    assert mq.drain("a") == [{"n": 3}]


# -- drive -----------------------------------------------------------------

def test_drive_returns_machine_result():
    def machine():
        x = yield (lambda: 20)
        y = yield (lambda: 22)
        return x + y

    assert drive(machine()) == 42


def test_drive_throws_call_errors_into_machine():
    def machine():
        try:
            yield (lambda: (_ for _ in ()).throw(KeyNotFound("k")))
        except KeyNotFound as e:
            return f"recovered:{e.key}"

    assert drive(machine()) == "recovered:k"


def test_drive_propagates_uncaught_errors():
    def machine():
        yield (lambda: (_ for _ in ()).throw(ValueError("boom")))

    with pytest.raises(ValueError, match="boom"):
        drive(machine())


# -- barrier semantics under real concurrency ------------------------------

def test_barrier_round_trip_across_threads():
    """N workers report, a coordinator collects all N, then broadcasts a
    release every worker receives — the local-backend barrier primitive."""
    n = 4
    mq = LocalMessageQueue()
    ex = LocalExchange(mq)
    sv = LocalServices(LocalObjectStore(), LocalKVStore(), mq, ex)
    mq.declare("supervisor")
    for w in range(n):
        mq.declare(f"worker-{w}")
        ex.bind(f"worker-{w}")

    releases = {}

    def worker_machine(w):
        yield sv.mq_publish("supervisor", {"worker": w})
        release = yield sv.mq_consume(f"worker-{w}")
        releases[w] = release

    def coordinator_machine():
        seen = []
        while len(seen) < n:
            report = yield sv.mq_consume("supervisor")
            seen.append(report["worker"])
        yield sv.broadcast({"release": sorted(seen)})

    threads = [
        threading.Thread(target=drive, args=(worker_machine(w),))
        for w in range(n)
    ]
    threads.append(threading.Thread(target=drive, args=(coordinator_machine(),)))
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=10)
    assert all(not th.is_alive() for th in threads)
    assert releases == {w: {"release": list(range(n))} for w in range(n)}


# -- clock -----------------------------------------------------------------

def test_clock_advances_with_real_time():
    clock = LocalClock(max_duration_s=100.0)
    t0 = clock.now()
    time.sleep(0.02)
    t1 = clock.now()
    assert t1 - t0 >= 0.015
    assert clock.remaining_time(t0) <= 100.0 - (t1 - t0) + 1e-6


# -- guard rails -----------------------------------------------------------

def test_run_local_job_rejects_fault_profiles():
    from repro import FAULT_PROFILES, JobConfig
    from repro.ml.data import MovieLensSpec, movielens_like
    from repro.ml.models import PMF
    from repro.ml.optim import InverseSqrtLR, MomentumSGD

    spec = MovieLensSpec(n_users=20, n_movies=20, n_ratings=400, batch_size=200)
    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=2),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(4.0)),
        dataset=movielens_like(spec, seed=0),
        n_workers=2,
        max_steps=2,
        faults=FAULT_PROFILES["chaos"],
    )
    with pytest.raises(ValueError, match="cannot inject faults"):
        run_local_job(config)
