"""Unit tests for the simulated storage services."""

import numpy as np
import pytest

from repro.net import ConstantLatency
from repro.sim import Environment, RandomStreams
from repro.storage import (
    BucketNotFound,
    Exchange,
    KeyNotFound,
    KVStore,
    MessageQueue,
    ObjectStore,
    QueueClosed,
    payload_size,
)


def make_world():
    env = Environment()
    streams = RandomStreams(seed=0)
    return env, streams


def run_proc(env, gen):
    p = env.process(gen)
    env.run()
    assert p.ok, p.value
    return p.value


# ------------------------------------------------------------------ sizing
def test_payload_size_numpy_uses_nbytes():
    arr = np.zeros(100)
    assert payload_size(arr) == 64 + 800


def test_payload_size_bytes_and_str():
    assert payload_size(b"abcd") == 64 + 4
    assert payload_size("héllo") == 64 + len("héllo".encode())


def test_payload_size_scalars():
    assert payload_size(None) == 65
    assert payload_size(True) == 65
    assert payload_size(3) == 72
    assert payload_size(3.5) == 72


def test_payload_size_containers_recurse():
    flat = payload_size([1.0, 2.0])
    assert flat == 64 + 2 * (8 + 8)
    d = payload_size({"k": 1.0})
    assert d == 64 + 8 + 1 + 8  # overhead + item + key + value


def test_payload_size_rejects_unknown_types():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        payload_size(Opaque())


def test_payload_size_uses_custom_nbytes_attribute():
    class Sized:
        nbytes = 1234

    assert payload_size(Sized()) == 64 + 1234


# ------------------------------------------------------------- object store
def test_object_store_put_get_roundtrip():
    env, streams = make_world()
    cos = ObjectStore(env, streams, latency=ConstantLatency(0.01))
    cos.create_bucket("b")
    data = np.arange(10.0)

    def proc():
        yield from cos.put("b", "k", data)
        out = yield from cos.get("b", "k")
        return out

    out = run_proc(env, proc())
    np.testing.assert_array_equal(out, data)
    assert env.now > 0  # time was charged


def test_object_store_get_missing_key_raises():
    env, streams = make_world()
    cos = ObjectStore(env, streams)
    cos.create_bucket("b")

    def proc():
        yield from cos.get("b", "nope")

    p = env.process(proc())
    with pytest.raises(KeyNotFound):
        env.run()


def test_object_store_unknown_bucket_raises():
    env, streams = make_world()
    cos = ObjectStore(env, streams)
    with pytest.raises(BucketNotFound):
        cos.peek("ghost", "k")


def test_object_store_delete_idempotent():
    env, streams = make_world()
    cos = ObjectStore(env, streams, latency=ConstantLatency(0.001))
    cos.preload("b", "k", 1.0)

    def proc():
        yield from cos.delete("b", "k")
        yield from cos.delete("b", "k")  # second delete is fine
        return cos.object_count("b")

    assert run_proc(env, proc()) == 0


def test_object_store_list_keys_prefix():
    env, streams = make_world()
    cos = ObjectStore(env, streams, latency=ConstantLatency(0.001))
    for key in ["a/1", "a/2", "b/1"]:
        cos.preload("b", key, 0)

    def proc():
        return (yield from cos.list_keys("b", prefix="a/"))

    assert run_proc(env, proc()) == ["a/1", "a/2"]


def test_object_store_metrics_track_requests():
    env, streams = make_world()
    cos = ObjectStore(env, streams, latency=ConstantLatency(0.001))
    cos.preload("b", "k", np.zeros(100))

    def proc():
        yield from cos.get("b", "k")
        yield from cos.get("b", "k")

    run_proc(env, proc())
    assert cos.metrics.requests["get"] == 2
    assert cos.metrics.bytes_out == 2 * payload_size(np.zeros(100))


def test_object_store_preload_charges_no_time():
    env, streams = make_world()
    cos = ObjectStore(env, streams)
    cos.preload("b", "k", np.zeros(1000))
    assert env.now == 0.0


# ----------------------------------------------------------------- KV store
def test_kv_set_get_roundtrip():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        yield from kv.set("x", 42)
        return (yield from kv.get("x"))

    assert run_proc(env, proc()) == 42


def test_kv_get_missing_raises_and_get_or_none():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        return (yield from kv.get_or_none("missing"))

    assert run_proc(env, proc()) is None

    def proc2():
        yield from kv.get("missing")

    env.process(proc2())
    with pytest.raises(KeyNotFound):
        env.run()


def test_kv_incr_atomic_counter():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        yield from kv.incr("c")
        yield from kv.incr("c", amount=4)
        return (yield from kv.get("c"))

    assert run_proc(env, proc()) == 5


def test_kv_list_operations():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        n1 = yield from kv.rpush("log", "a")
        n2 = yield from kv.rpush("log", "b")
        length = yield from kv.llen("log")
        items = yield from kv.lrange("log", 0, 2)
        return n1, n2, length, items

    assert run_proc(env, proc()) == (1, 2, 2, ["a", "b"])


def test_kv_exists_and_delete():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        yield from kv.set("x", 1)
        a = yield from kv.exists("x")
        yield from kv.delete("x")
        b = yield from kv.exists("x")
        return a, b

    assert run_proc(env, proc()) == (True, False)


def test_kv_flush_clears_everything():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.001))

    def proc():
        yield from kv.set("x", 1)
        yield from kv.rpush("l", 2)

    run_proc(env, proc())
    assert kv.key_count() == 2
    kv.flush()
    assert kv.key_count() == 0


def test_kv_charges_bytes_for_values():
    env, streams = make_world()
    kv = KVStore(env, streams, latency=ConstantLatency(0.0), bandwidth_bps=8e6)
    payload = np.zeros(125_000)  # 1 Mbit body

    def proc():
        yield from kv.set("x", payload)
        return env.now

    # (1e6 + envelope) bytes * 8 bits / 8e6 bps ~ 1 s
    assert run_proc(env, proc()) == pytest.approx(1.0, rel=0.01)


# -------------------------------------------------------------- message queue
def test_mq_publish_consume_fifo():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))

    def producer():
        yield from mq.publish("q", {"n": 1})
        yield from mq.publish("q", {"n": 2})

    def consumer():
        a = yield from mq.consume("q")
        b = yield from mq.consume("q")
        return a["n"], b["n"]

    env.process(producer())
    p = env.process(consumer())
    env.run()
    assert p.value == (1, 2)


def test_mq_consume_blocks_until_message():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))

    def consumer():
        msg = yield from mq.consume("q")
        return (msg, env.now)

    def producer():
        yield env.timeout(5)
        yield from mq.publish("q", "late")

    p = env.process(consumer())
    env.process(producer())
    env.run()
    msg, t = p.value
    assert msg == "late" and t > 5


def test_mq_try_consume_nonblocking():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))

    def proc():
        nothing = yield from mq.try_consume("q")
        yield from mq.publish("q", "x")
        something = yield from mq.try_consume("q")
        return nothing, something

    assert run_proc(env, proc()) == (None, "x")


def test_mq_drain_returns_all_pending():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))

    def proc():
        for i in range(3):
            yield from mq.publish("q", i)
        return (yield from mq.drain("q"))

    assert run_proc(env, proc()) == [0, 1, 2]


def test_mq_closed_queue_rejects_operations():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))
    mq.close("q")

    def proc():
        yield from mq.publish("q", 1)

    env.process(proc())
    with pytest.raises(QueueClosed):
        env.run()


def test_mq_depth():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))

    def proc():
        yield from mq.publish("q", 1)

    run_proc(env, proc())
    assert mq.depth("q") == 1


# ------------------------------------------------------------------ exchange
def test_exchange_fanout_to_all_bound_queues():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))
    ex = Exchange(mq, "bcast")
    for q in ("q0", "q1", "q2"):
        ex.bind(q)

    def proc():
        yield from ex.publish("hello")

    run_proc(env, proc())
    assert all(mq.depth(q) == 1 for q in ("q0", "q1", "q2"))


def test_exchange_exclude_and_unbind():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))
    ex = Exchange(mq, "bcast")
    for q in ("q0", "q1", "q2"):
        ex.bind(q)
    ex.unbind("q2")

    def proc():
        yield from ex.publish("hello", exclude="q0")

    run_proc(env, proc())
    assert mq.depth("q0") == 0
    assert mq.depth("q1") == 1
    assert mq.depth("q2") == 0
    assert ex.bindings == ["q0", "q1"]


def test_exchange_double_bind_is_idempotent():
    env, streams = make_world()
    mq = MessageQueue(env, streams, latency=ConstantLatency(0.001))
    ex = Exchange(mq, "bcast")
    ex.bind("q")
    ex.bind("q")
    assert ex.bindings == ["q"]
