"""Regression tests: FAILED activations still produce billing records.

A real FaaS provider bills every activation for the GB-seconds it
consumed, whether it returned, raised, timed out, or was killed.  An
earlier version only recorded successful activations, understating the
bill of any run with failures — exactly the runs fault injection creates.
"""

import pytest

from repro.faas import (
    ActivationCrash,
    ActivationTimeout,
    FaaSLimits,
    FaaSPlatform,
    FunctionSpec,
)
from repro.faas.billing import ActivationRecord, FaaSBilling
from repro.faults import FaultInjector, FaultProfile
from repro.sim import Environment, RandomStreams


def make_platform(**kwargs):
    env = Environment()
    streams = RandomStreams(seed=0)
    return env, FaaSPlatform(env, streams, **kwargs)


def test_handler_exception_is_billed():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(1.0)
        raise RuntimeError("boom")

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.run()
    with pytest.raises(RuntimeError):
        act.result()
    assert act.record is not None
    assert not act.record.ok
    assert act.record.billed_duration >= 1.0
    assert platform.billing.total_cost() > 0


def test_duration_cap_timeout_is_billed():
    env, platform = make_platform(limits=FaaSLimits(max_duration_s=2.0))

    def handler(ctx, payload):
        yield from ctx.sleep(100.0)

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.run()
    with pytest.raises(ActivationTimeout):
        act.result()
    assert act.record is not None and not act.record.ok
    # Billed for the full time it held the container, i.e. the cap.
    assert act.record.billed_duration >= 2.0


def test_externally_interrupted_activation_is_billed():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.sleep(100.0)

    def killer(act):
        yield env.timeout(1.0)
        act.process.interrupt(cause="test-kill")

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.process(killer(act))
    env.run()
    assert act.record is not None and not act.record.ok
    assert act.record.billed_duration > 0


def test_injected_crash_is_billed():
    env = Environment()
    streams = RandomStreams(seed=0)
    injector = FaultInjector(
        FaultProfile(crash_rate=1.0, crash_window_s=(0.5, 1.0)), streams
    )
    platform = FaaSPlatform(env, streams, faults=injector)

    def handler(ctx, payload):
        yield from ctx.compute(50.0)

    platform.register(FunctionSpec("worker-0", handler))
    act = platform.invoke("worker-0")
    env.run()
    with pytest.raises(ActivationCrash):
        act.result()
    assert act.record is not None and not act.record.ok
    assert act.record.billed_duration > 0


# ---------------------------------------------- cost_up_to boundaries
def make_billing(*spans):
    """Billing with one 1 GB record per (start, end) pair."""
    records = [
        ActivationRecord("f", i, 1024, start, end, cold=False, ok=True)
        for i, (start, end) in enumerate(spans)
    ]
    return FaaSBilling(records=records)


def test_gb_seconds_property():
    r = ActivationRecord("f", 0, 2048, 0.0, 0.73, cold=False, ok=True)
    # 2 GB * 0.8 s (0.73 rounded up to the next 100 ms quantum)
    assert r.gb_seconds == pytest.approx(2.0 * 0.8)
    assert r.cost(1.7e-5) == pytest.approx(r.gb_seconds * 1.7e-5)
    billing = FaaSBilling(records=[r])
    assert billing.total_gb_seconds() == pytest.approx(r.gb_seconds)


def test_cost_up_to_excludes_not_yet_started():
    billing = make_billing((10.0, 20.0))
    assert billing.cost_up_to(5.0) == 0.0
    # an activation starting exactly at `time` has not accrued yet
    assert billing.cost_up_to(10.0) == 0.0


def test_cost_up_to_in_flight_charges_elapsed_portion():
    billing = make_billing((10.0, 20.0))
    full = billing.records[0].cost(billing.rate_per_gb_s)
    half = billing.cost_up_to(15.0)
    assert 0.0 < half < full
    # elapsed 5.0 s at 1 GB: exactly half the 10 s record
    assert half == pytest.approx(full / 2)


def test_cost_up_to_in_flight_pays_minimum_quantum():
    billing = make_billing((10.0, 20.0))
    # barely started: still billed one full 100 ms quantum
    just_after = billing.cost_up_to(10.0 + 1e-6)
    assert just_after == pytest.approx(1.0 * 0.1 * billing.rate_per_gb_s)


def test_cost_up_to_rounds_partial_duration_up():
    billing = make_billing((0.0, 10.0))
    # 0.25 s elapsed bills as 0.3 s
    assert billing.cost_up_to(0.25) == pytest.approx(
        0.3 * billing.rate_per_gb_s
    )
    # exactly on a quantum boundary: no round-up
    assert billing.cost_up_to(0.3) == pytest.approx(
        0.3 * billing.rate_per_gb_s
    )


def test_cost_up_to_at_end_and_beyond_equals_total():
    billing = make_billing((0.0, 1.0), (0.5, 2.25))
    total = billing.total_cost()
    assert billing.cost_up_to(2.25) == pytest.approx(total)
    assert billing.cost_up_to(1e9) == pytest.approx(total)


def test_cost_up_to_is_monotone_across_records():
    billing = make_billing((0.0, 1.0), (0.5, 2.0), (3.0, 4.0))
    times = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.05, 4.0, 5.0]
    costs = [billing.cost_up_to(t) for t in times]
    assert costs == sorted(costs)
    assert costs[-1] == pytest.approx(billing.total_cost())


def test_mixed_outcomes_all_recorded():
    env, platform = make_platform()

    def good(ctx, payload):
        yield from ctx.compute(0.5)
        return "ok"

    def bad(ctx, payload):
        yield from ctx.compute(0.5)
        raise ValueError("nope")

    platform.register(FunctionSpec("good", good))
    platform.register(FunctionSpec("bad", bad))
    acts = [platform.invoke("good"), platform.invoke("bad"),
            platform.invoke("good")]
    env.run()
    records = platform.billing.records
    assert len(records) == 3
    assert sorted(r.ok for r in records) == [False, True, True]
    assert all(r.billed_duration > 0 for r in records)
    assert acts[1].record is not None and not acts[1].record.ok
