"""Regression tests: FAILED activations still produce billing records.

A real FaaS provider bills every activation for the GB-seconds it
consumed, whether it returned, raised, timed out, or was killed.  An
earlier version only recorded successful activations, understating the
bill of any run with failures — exactly the runs fault injection creates.
"""

import pytest

from repro.faas import (
    ActivationCrash,
    ActivationTimeout,
    FaaSLimits,
    FaaSPlatform,
    FunctionSpec,
)
from repro.faults import FaultInjector, FaultProfile
from repro.sim import Environment, RandomStreams


def make_platform(**kwargs):
    env = Environment()
    streams = RandomStreams(seed=0)
    return env, FaaSPlatform(env, streams, **kwargs)


def test_handler_exception_is_billed():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(1.0)
        raise RuntimeError("boom")

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.run()
    with pytest.raises(RuntimeError):
        act.result()
    assert act.record is not None
    assert not act.record.ok
    assert act.record.billed_duration >= 1.0
    assert platform.billing.total_cost() > 0


def test_duration_cap_timeout_is_billed():
    env, platform = make_platform(limits=FaaSLimits(max_duration_s=2.0))

    def handler(ctx, payload):
        yield from ctx.sleep(100.0)

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.run()
    with pytest.raises(ActivationTimeout):
        act.result()
    assert act.record is not None and not act.record.ok
    # Billed for the full time it held the container, i.e. the cap.
    assert act.record.billed_duration >= 2.0


def test_externally_interrupted_activation_is_billed():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.sleep(100.0)

    def killer(act):
        yield env.timeout(1.0)
        act.process.interrupt(cause="test-kill")

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.process(killer(act))
    env.run()
    assert act.record is not None and not act.record.ok
    assert act.record.billed_duration > 0


def test_injected_crash_is_billed():
    env = Environment()
    streams = RandomStreams(seed=0)
    injector = FaultInjector(
        FaultProfile(crash_rate=1.0, crash_window_s=(0.5, 1.0)), streams
    )
    platform = FaaSPlatform(env, streams, faults=injector)

    def handler(ctx, payload):
        yield from ctx.compute(50.0)

    platform.register(FunctionSpec("worker-0", handler))
    act = platform.invoke("worker-0")
    env.run()
    with pytest.raises(ActivationCrash):
        act.result()
    assert act.record is not None and not act.record.ok
    assert act.record.billed_duration > 0


def test_mixed_outcomes_all_recorded():
    env, platform = make_platform()

    def good(ctx, payload):
        yield from ctx.compute(0.5)
        return "ok"

    def bad(ctx, payload):
        yield from ctx.compute(0.5)
        raise ValueError("nope")

    platform.register(FunctionSpec("good", good))
    platform.register(FunctionSpec("bad", bad))
    acts = [platform.invoke("good"), platform.invoke("bad"),
            platform.invoke("good")]
    env.run()
    records = platform.billing.records
    assert len(records) == 3
    assert sorted(r.ok for r in records) == [False, True, True]
    assert all(r.billed_duration > 0 for r in records)
    assert acts[1].record is not None and not acts[1].record.ok
