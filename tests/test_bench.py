"""Tests for the microbenchmark harness (``repro.bench``).

The harness is CI infrastructure: a silent bug here (a checksum that
never fires, a gate that never fails) would let a results-changing
"optimization" through, so the failure paths are tested as carefully as
the happy path.  Timing tests use toy synthetic ops — never the real
workloads — to stay fast and deterministic.
"""

import copy
import json

import pytest

from repro.bench import (
    ALL_OPS,
    GATED_GROUPS,
    BenchOp,
    checksum_bytes,
    compare,
    run_suite,
    write_results,
)
from repro.bench.cli import main


def _toy_op(name="kernel.toy", group="kernel", value=7, portable=True):
    return BenchOp(
        name=name,
        group=group,
        make_state=lambda: value,
        run=lambda state, payload: state * 2,
        checksum=lambda out: checksum_bytes(str(out).encode()),
        portable=portable,
    )


def _doc(*entries, name="doc"):
    return {
        "schema_version": 1,
        "name": name,
        "quick": False,
        "host": {},
        "ops": [dict(e) for e in entries],
    }


def _entry(op="kernel.toy", group="kernel", p50=1000, checksum="abc", portable=True):
    return {
        "op": op,
        "group": group,
        "reps": 5,
        "p50_ns": p50,
        "p95_ns": p50 * 2,
        "checksum": checksum,
        "portable_checksum": portable,
    }


# ------------------------------------------------------------ checksums
def test_checksum_bytes_is_length_prefixed():
    # ("ab", "c") and ("a", "bc") concatenate identically; the length
    # prefix must still distinguish them.
    assert checksum_bytes(b"ab", b"c") != checksum_bytes(b"a", b"bc")
    assert checksum_bytes(b"x") == checksum_bytes(b"x")


# ------------------------------------------------------------ run_suite
def test_run_suite_document_schema():
    doc = run_suite([_toy_op()], name="t", quick=True)
    assert set(doc) == {"schema_version", "name", "quick", "host", "ops"}
    assert doc["name"] == "t" and doc["quick"] is True
    (entry,) = doc["ops"]
    assert entry["op"] == "kernel.toy"
    assert entry["group"] == "kernel"
    assert entry["reps"] > 0
    assert entry["p50_ns"] >= 0 and entry["p95_ns"] >= entry["p50_ns"]
    assert entry["p99_ns"] >= entry["p95_ns"]  # tail percentile ships too
    assert entry["checksum"] == checksum_bytes(b"14")
    assert entry["portable_checksum"] is True


def test_run_suite_only_filter_and_unknown_op():
    ops = [_toy_op("kernel.a"), _toy_op("kernel.b")]
    doc = run_suite(ops, name="t", quick=True, only=["kernel.b"])
    assert [e["op"] for e in doc["ops"]] == ["kernel.b"]
    with pytest.raises(ValueError, match="unknown ops"):
        run_suite(ops, name="t", quick=True, only=["kernel.nope"])


def test_run_suite_prepare_runs_outside_timed_region():
    # An op that mutates its payload still checksums correctly because
    # prepare() hands it a fresh payload each rep.
    op = BenchOp(
        name="scatter.toy",
        group="scatter",
        make_state=lambda: [1, 2, 3],
        prepare=lambda state: list(state),
        run=lambda state, payload: payload.append(4) or payload,
        checksum=lambda out: checksum_bytes(bytes(out)),
    )
    doc = run_suite([op], name="t", quick=True)
    assert doc["ops"][0]["checksum"] == checksum_bytes(bytes([1, 2, 3, 4]))


def test_write_results_roundtrip(tmp_path):
    doc = run_suite([_toy_op()], name="unit", quick=True)
    path = write_results(doc, str(tmp_path))
    assert path.endswith("BENCH_unit.json")
    with open(path) as handle:
        assert json.load(handle) == doc


def test_registered_ops_cover_every_gated_group():
    groups = {op.group for op in ALL_OPS}
    for gated in GATED_GROUPS:
        assert gated in groups
    assert len({op.name for op in ALL_OPS}) == len(ALL_OPS)


def test_simkernel_group_has_the_gated_kernel_ops():
    # The committed BENCH_kernel_{baseline,optimized}.json pair gates
    # exactly these ops; renaming one silently un-gates the win.
    names = {op.name for op in ALL_OPS if op.group == "simkernel"}
    assert names == {
        "simkernel.step_loop_450k",
        "simkernel.fifo_pipeline_240k",
        "simkernel.mixed_horizon_371k",
    }


# -------------------------------------------------------------- compare
def test_compare_passes_on_identical_docs():
    doc = _doc(_entry())
    result = compare(doc, copy.deepcopy(doc), min_speedup=0.0)
    assert result.ok
    assert result.speedups["kernel.toy"][2] == pytest.approx(1.0)


def test_compare_fails_on_checksum_drift():
    base = _doc(_entry(checksum="aaa"))
    new = _doc(_entry(checksum="bbb", p50=1))  # huge speedup cannot save it
    result = compare(base, new, min_speedup=0.0)
    assert not result.ok
    assert any("checksum drift" in line for line in result.lines)


def test_compare_fails_below_gate_only_for_gated_groups():
    base = _doc(_entry("kernel.toy", "kernel"), _entry("sim.toy", "sim"))
    new = _doc(
        _entry("kernel.toy", "kernel", p50=900),  # 1.11x < 2x -> gated FAIL
        _entry("sim.toy", "sim", p50=2000),  # 0.5x but ungated -> ok
    )
    result = compare(base, new, min_speedup=2.0)
    assert not result.ok
    fails = [line for line in result.lines if line.startswith("FAIL")]
    assert len(fails) == 1 and "kernel.toy" in fails[0]


def test_compare_gate_disabled_at_zero():
    base = _doc(_entry(p50=1000))
    new = _doc(_entry(p50=5000))  # 0.2x regression
    assert compare(base, new, min_speedup=0.0).ok


def test_compare_portable_only_skips_nonportable_drift():
    base = _doc(_entry(checksum="aaa", portable=False))
    new = _doc(_entry(checksum="bbb", portable=False))
    strict = compare(base, new, min_speedup=0.0)
    lax = compare(base, new, min_speedup=0.0, portable_only=True)
    assert not strict.ok
    assert lax.ok
    assert any(line.startswith("skip") for line in lax.lines)


def test_compare_reports_missing_and_new_ops():
    base = _doc(_entry("kernel.old"))
    new = _doc(_entry("kernel.new"))
    result = compare(base, new, min_speedup=0.0)
    assert result.ok  # informational only
    assert any("kernel.old: missing" in line for line in result.lines)
    assert any("kernel.new: new op" in line for line in result.lines)


# ------------------------------------------------------------------ CLI
def test_cli_list_ops(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for op in ALL_OPS:
        assert op.name in out


def test_cli_unknown_op_is_an_error(capsys):
    assert main(["--ops", "kernel.nope"]) == 2


def test_cli_compare_exit_codes(tmp_path, capsys):
    base = tmp_path / "BENCH_a.json"
    good = tmp_path / "BENCH_b.json"
    drifted = tmp_path / "BENCH_c.json"
    base.write_text(json.dumps(_doc(_entry(p50=1000), name="a")))
    good.write_text(json.dumps(_doc(_entry(p50=100), name="b")))
    drifted.write_text(json.dumps(_doc(_entry(checksum="zzz"), name="c")))

    assert main(["--compare", str(base), str(good)]) == 0
    assert "PASS" in capsys.readouterr().out
    assert main(["--compare", str(base), str(drifted), "--min-speedup", "0"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_runs_single_real_op(tmp_path, capsys):
    # One cheap real op end-to-end: exercises ops.py wiring and the
    # writer without paying for the full suite.
    assert main(
        ["--quick", "--ops", "kernel.row_slice", "--name", "t", "--out", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "kernel.row_slice" in out
    doc = json.loads((tmp_path / "BENCH_t.json").read_text())
    assert [e["op"] for e in doc["ops"]] == ["kernel.row_slice"]


# ---------------------------------------------------- host subcommands
def test_format_profile_renders_counts_and_histogram():
    from repro.bench.hostbench import format_profile

    report = {
        "event_types": {
            "Timeout": {"count": 450_000, "total_ns": 500_000_000},
            "Process": {"count": 5_000, "total_ns": 1_000_000},
        },
        "timeout_delays": [
            {"ge_s": 0.0, "lt_s": 0.001, "count": 0},
            {"ge_s": 100.0, "lt_s": None, "count": 7},
        ],
    }
    text = format_profile(report)
    assert "Timeout" in text and "450000" in text
    assert "per-event-type breakdown" in text
    assert "timeout-delay histogram" in text
    assert "infs)" in text and "7" in text  # open-ended top bucket


def test_profile_report_shape_from_instrumented_kernel():
    # A tiny env under enable_profile must produce the schema hostbench
    # formats: per-type count/total_ns and the delay histogram.
    import time as _time

    from repro.sim import Environment

    env = Environment()

    def machine(env):
        yield env.timeout(0.5)
        yield env.timeout(0.0)

    env.process(machine(env))
    env.enable_profile(_time.perf_counter_ns)
    env.run()
    report = env.profile_report()
    assert set(report) == {"event_types", "timeout_delays"}
    assert report["event_types"]["Timeout"]["count"] >= 2
    for entry in report["event_types"].values():
        assert entry["count"] > 0 and entry["total_ns"] >= 0
    assert sum(b["count"] for b in report["timeout_delays"]) >= 1


def test_backend_bench_writes_cpu_aware_doc(tmp_path, capsys):
    from repro.bench.cli import main as bench_main

    code = bench_main(
        [
            "backend", "--workers", "2", "--max-steps", "5",
            "--name", "t_backend", "--out", str(tmp_path), "--check-ratio",
        ]
    )
    out = capsys.readouterr().out
    doc = json.loads((tmp_path / "BENCH_t_backend.json").read_text())
    assert doc["host_cpus"] >= 1
    assert [r["backend"] for r in doc["backend"]["runs"]] == ["local", "procs"]
    for run in doc["backend"]["runs"]:
        assert run["steps"] == 5 and run["steps_per_s"] > 0
    assert doc["backend"]["required_ratio"] == 1.5
    assert doc["backend"]["ratio_gated"] == (doc["host_cpus"] >= 4)
    if doc["host_cpus"] < 4:
        # single-core runner: numbers recorded, gate explicitly skipped
        assert code == 0
        assert "SKIPPED" in out
