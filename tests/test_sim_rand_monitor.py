"""Unit tests for RandomStreams and Monitor/Series."""

import numpy as np
import pytest

from repro.sim import Monitor, RandomStreams, Series


# ----------------------------------------------------------- RandomStreams
def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("x").normal(size=10)
    b = RandomStreams(seed=7).stream("x").normal(size=10)
    np.testing.assert_array_equal(a, b)


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("a").normal(size=100)
    b = streams.stream("b").normal(size=100)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.3


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").normal(size=10)
    b = RandomStreams(seed=2).stream("x").normal(size=10)
    assert not np.array_equal(a, b)


def test_stream_cached_not_restarted():
    streams = RandomStreams(seed=0)
    first = streams.stream("x").normal(size=5)
    second = streams.stream("x").normal(size=5)
    assert not np.array_equal(first, second)  # continues, doesn't reset


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(seed=3)
    f1 = base.fork(1).stream("x").normal(size=5)
    f1_again = RandomStreams(seed=3).fork(1).stream("x").normal(size=5)
    f2 = base.fork(2).stream("x").normal(size=5)
    np.testing.assert_array_equal(f1, f1_again)
    assert not np.array_equal(f1, f2)


# ------------------------------------------------------------------ Series
def test_series_append_and_arrays():
    s = Series("loss")
    s.append(0.0, 1.0)
    s.append(1.0, 0.5)
    times, values = s.as_arrays()
    np.testing.assert_array_equal(times, [0.0, 1.0])
    np.testing.assert_array_equal(values, [1.0, 0.5])


def test_series_rejects_time_going_backwards():
    s = Series("loss")
    s.append(2.0, 1.0)
    with pytest.raises(ValueError):
        s.append(1.0, 0.5)


def test_series_time_to_reach_descending():
    s = Series("loss")
    for t, v in [(0, 1.0), (1, 0.8), (2, 0.6), (3, 0.4)]:
        s.append(t, v)
    assert s.time_to_reach(0.6) == 2
    assert s.time_to_reach(0.3) is None


def test_series_time_to_reach_ascending():
    s = Series("throughput")
    for t, v in [(0, 1), (1, 5), (2, 9)]:
        s.append(t, v)
    assert s.time_to_reach(5, descending=False) == 1


def test_series_value_at_step_function():
    s = Series("workers")
    s.append(0, 24)
    s.append(10, 20)
    s.append(20, 16)
    assert s.value_at(0) == 24
    assert s.value_at(9.9) == 24
    assert s.value_at(10) == 20
    assert s.value_at(100) == 16
    with pytest.raises(ValueError):
        s.value_at(-1)


def test_series_value_at_default_before_first_sample():
    s = Series("workers")
    s.append(10, 20)
    # pre-first-sample queries return the default verbatim when given...
    assert s.value_at(5, default=24) == 24
    assert s.value_at(5, default=None) is None  # None is a valid default
    # ...and the default never shadows a real sample
    assert s.value_at(10, default=99) == 20
    assert s.value_at(50, default=99) == 20
    # an empty series has no value at any time
    empty = Series("empty")
    assert empty.value_at(0, default=-1) == -1
    with pytest.raises(ValueError, match="no sample before"):
        empty.value_at(0)


def test_series_mean_and_last():
    s = Series("x")
    s.append(0, 2)
    s.append(1, 4)
    assert s.mean() == 3
    assert s.last() == (1, 4)
    with pytest.raises(ValueError):
        Series("empty").mean()


def test_series_integral_trapezoid():
    s = Series("x")
    s.append(0, 0)
    s.append(2, 2)
    assert s.integral() == pytest.approx(2.0)
    assert Series("tiny").integral() == 0.0


def test_monitor_records_and_lists():
    m = Monitor()
    m.record("loss", 0, 1.0)
    m.record("loss", 1, 0.9)
    m.record("workers", 0, 8)
    assert "loss" in m
    assert m.names() == ["loss", "workers"]
    assert len(m.series("loss")) == 2
