"""Unit tests for the simulated FaaS platform."""

import pytest

from repro.faas import (
    ActivationRecord,
    ActivationTimeout,
    ColdStartModel,
    FaaSBilling,
    FaaSLimits,
    FaaSPlatform,
    FunctionSpec,
    IBM_CLOUD_FUNCTIONS_LIMITS,
)
from repro.sim import Environment, RandomStreams


def make_platform(**kwargs):
    env = Environment()
    streams = RandomStreams(seed=0)
    return env, FaaSPlatform(env, streams, **kwargs)


# ------------------------------------------------------------------ limits
def test_cpu_share_proportional_to_memory():
    limits = IBM_CLOUD_FUNCTIONS_LIMITS
    assert limits.cpu_share(2048) == 1.0
    assert limits.cpu_share(1024) == 0.5
    assert limits.cpu_share(512) == 0.25


def test_cpu_share_capped_at_one_vcpu():
    limits = FaaSLimits(max_memory_mb=4096)
    assert limits.cpu_share(4096) == 1.0


def test_memory_validation():
    limits = IBM_CLOUD_FUNCTIONS_LIMITS
    with pytest.raises(ValueError):
        limits.validate_memory(64)
    with pytest.raises(ValueError):
        limits.validate_memory(4096)


def test_thread_speedup_single_thread_is_one():
    assert IBM_CLOUD_FUNCTIONS_LIMITS.thread_speedup(2048, 1) == 1.0


def test_thread_speedup_two_threads_small_gain_at_full_memory():
    s = IBM_CLOUD_FUNCTIONS_LIMITS.thread_speedup(2048, 2)
    assert 1.0 <= s <= 1.2


def test_thread_speedup_below_one_at_fractional_share():
    # The paper's Fig. 3 observation: 2 threads at 1536 MiB are *slower*.
    s = IBM_CLOUD_FUNCTIONS_LIMITS.thread_speedup(1536, 2)
    assert s < 1.0


def test_thread_speedup_validates():
    with pytest.raises(ValueError):
        IBM_CLOUD_FUNCTIONS_LIMITS.thread_speedup(2048, 0)


# ----------------------------------------------------------------- billing
def test_billed_duration_rounds_up_to_100ms():
    rec = ActivationRecord("f", 0, 2048, start=0.0, end=0.01, cold=False, ok=True)
    assert rec.billed_duration == pytest.approx(0.1)
    rec2 = ActivationRecord("f", 0, 2048, start=0.0, end=0.101, cold=False, ok=True)
    assert rec2.billed_duration == pytest.approx(0.2)
    rec3 = ActivationRecord("f", 0, 2048, start=0.0, end=0.3, cold=False, ok=True)
    assert rec3.billed_duration == pytest.approx(0.3)


def test_cost_matches_table2_rate():
    # Table 2: a 2 GB function costs 3.4e-5 $/s.
    rec = ActivationRecord("f", 0, 2048, start=0.0, end=100.0, cold=False, ok=True)
    assert rec.cost() == pytest.approx(100 * 3.4e-5, rel=1e-6)


def test_cost_scales_with_memory():
    rec = ActivationRecord("f", 0, 1024, start=0.0, end=100.0, cold=False, ok=True)
    assert rec.cost() == pytest.approx(50 * 3.4e-5, rel=1e-6)


def test_billing_aggregates():
    billing = FaaSBilling()
    for i in range(3):
        billing.add(
            ActivationRecord("f", i, 2048, start=0.0, end=10.0, cold=False, ok=True)
        )
    assert billing.total_cost() == pytest.approx(3 * 10 * 3.4e-5)
    assert billing.total_gb_seconds() == pytest.approx(60.0)
    assert billing.cost_by_function() == {"f": pytest.approx(3 * 10 * 3.4e-5)}


def test_billing_cost_up_to_partial_activation():
    billing = FaaSBilling()
    billing.add(
        ActivationRecord("f", 0, 2048, start=0.0, end=100.0, cold=False, ok=True)
    )
    assert billing.cost_up_to(50.0) == pytest.approx(50 * 3.4e-5)
    assert billing.cost_up_to(0.0) == 0.0
    assert billing.cost_up_to(1000.0) == billing.total_cost()


# ---------------------------------------------------------------- platform
def test_invoke_runs_handler_and_returns_result():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.05)
        return payload * 2

    platform.register(FunctionSpec("double", handler))
    act = platform.invoke("double", 21)
    env.run()
    assert act.result() == 42
    assert act.record is not None and act.record.ok


def test_unregistered_function_rejected():
    env, platform = make_platform()
    with pytest.raises(KeyError):
        platform.invoke("ghost")


def test_duplicate_registration_rejected():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield ctx.env.timeout(0)

    platform.register(FunctionSpec("f", handler))
    with pytest.raises(ValueError):
        platform.register(FunctionSpec("f", handler))


def test_first_invocation_cold_second_warm():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.01)

    platform.register(FunctionSpec("f", handler))
    a1 = platform.invoke("f")
    env.run()
    a2 = platform.invoke("f")
    env.run()
    assert a1.cold and not a2.cold
    assert a1.record.duration > a2.record.duration


def test_concurrent_invocations_are_cold():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.1)

    platform.register(FunctionSpec("f", handler))
    acts = [platform.invoke("f") for _ in range(3)]
    env.run()
    assert all(a.cold for a in acts)


def test_warm_container_expires_after_keepalive():
    env, platform = make_platform(
        cold_start=ColdStartModel(keep_alive=10.0)
    )

    def handler(ctx, payload):
        yield from ctx.compute(0.01)

    platform.register(FunctionSpec("f", handler))
    platform.invoke("f")
    env.run()
    env.timeout(100)
    env.run()  # idle past keep-alive
    act = platform.invoke("f")
    env.run()
    assert act.cold


def test_compute_speed_scales_with_memory():
    env, platform = make_platform()

    def handler(ctx, payload):
        start = ctx.now
        yield from ctx.compute(1.0)
        return ctx.now - start

    platform.register(FunctionSpec("full", handler, memory_mb=2048))
    platform.register(FunctionSpec("half", handler, memory_mb=1024))
    a_full = platform.invoke("full")
    a_half = platform.invoke("half")
    env.run()
    assert a_full.result() == pytest.approx(1.0)
    assert a_half.result() == pytest.approx(2.0)


def test_duration_cap_kills_activation():
    env, platform = make_platform(
        limits=FaaSLimits(max_duration_s=1.0)
    )

    def runaway(ctx, payload):
        yield from ctx.compute(100.0)

    platform.register(FunctionSpec("slow", runaway))
    act = platform.invoke("slow")
    env.run()
    with pytest.raises(ActivationTimeout):
        act.result()
    assert act.record is not None and not act.record.ok


def test_failed_handler_surfaces_exception_via_result():
    env, platform = make_platform()

    def broken(ctx, payload):
        yield from ctx.compute(0.01)
        raise RuntimeError("handler bug")

    platform.register(FunctionSpec("broken", broken))
    act = platform.invoke("broken")
    env.run()
    with pytest.raises(RuntimeError, match="handler bug"):
        act.result()


def test_concurrency_cap_enforced():
    env, platform = make_platform(limits=FaaSLimits(max_concurrency=2))

    def handler(ctx, payload):
        yield from ctx.compute(1.0)

    platform.register(FunctionSpec("f", handler))
    platform.invoke("f")
    platform.invoke("f")
    with pytest.raises(RuntimeError, match="concurrency"):
        platform.invoke("f")


def test_invoke_and_wait_helper():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.01)
        return payload + 1

    platform.register(FunctionSpec("inc", handler))

    def proc():
        return (yield from platform.invoke_and_wait("inc", 1))

    p = env.process(proc())
    env.run()
    assert p.value == 2


def test_map_fans_out():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.01)
        return payload**2

    platform.register(FunctionSpec("sq", handler))
    acts = platform.map("sq", [1, 2, 3])
    env.run()
    assert [a.result() for a in acts] == [1, 4, 9]


def test_billing_records_every_activation():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(0.05)

    platform.register(FunctionSpec("f", handler))
    for _ in range(4):
        platform.invoke("f")
    env.run()
    assert len(platform.billing.records) == 4
    assert platform.billing.total_cost() > 0


def test_services_visible_in_context():
    env = Environment()
    streams = RandomStreams(seed=0)
    platform = FaaSPlatform(env, streams, services={"tag": "hello"})

    def handler(ctx, payload):
        yield from ctx.compute(0.001)
        return ctx.services["tag"]

    platform.register(FunctionSpec("f", handler))
    act = platform.invoke("f")
    env.run()
    assert act.result() == "hello"


def test_running_count_tracks_activations():
    env, platform = make_platform()

    def handler(ctx, payload):
        yield from ctx.compute(1.0)

    platform.register(FunctionSpec("f", handler))
    platform.invoke("f")
    platform.invoke("f")
    env.run(until=0.5)
    assert platform.running_count == 2
    env.run()
    assert platform.running_count == 0
