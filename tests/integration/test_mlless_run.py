"""End-to-end MLLess runs: convergence, cost accounting, BSP/ISP behavior."""

import numpy as np
import pytest

from repro import JobConfig, run_mlless
from repro.experiments.common import build_world, make_runtime
from repro.core import MLLessDriver

from .conftest import make_model, make_optimizer


def config_for(dataset, **overrides):
    kwargs = dict(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=dataset,
        n_workers=4,
        significance_v=0.0,
        target_loss=0.70,
        max_steps=300,
        seed=11,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def test_bsp_run_converges(small_dataset):
    result = run_mlless(config_for(small_dataset))
    assert result.converged
    assert result.final_loss <= 0.70
    assert result.total_steps > 1
    assert result.exec_time > 0


def test_loss_series_decreases_overall(small_dataset):
    result = run_mlless(config_for(small_dataset, target_loss=0.75))
    _times, losses = result.losses()
    assert losses[-1] < losses[0]


def test_cost_includes_functions_and_both_vms(small_dataset):
    result = run_mlless(config_for(small_dataset))
    breakdown = result.meter.breakdown()
    assert set(breakdown) == {"functions", "C1.4x4", "M1.2x16"}
    assert all(v > 0 for v in breakdown.values())


def test_deterministic_given_seed(small_dataset):
    r1 = run_mlless(config_for(small_dataset))
    r2 = run_mlless(config_for(small_dataset))
    assert r1.exec_time == r2.exec_time
    assert r1.total_steps == r2.total_steps
    np.testing.assert_array_equal(r1.losses()[1], r2.losses()[1])


def test_isp_filters_bytes_versus_bsp(small_dataset):
    worlds = {}
    for v in (0.0, 0.7):
        world = build_world(seed=11)
        cfg = config_for(small_dataset, significance_v=v, max_steps=40,
                         target_loss=-1.0)
        run_mlless(cfg, world=world)
        worlds[v] = world.kv.metrics.bytes_in
    assert worlds[0.7] < worlds[0.0]


def test_isp_replicas_stay_close_to_each_other(small_dataset):
    # Run ISP and check worker checkpoints... replicas are internal; we
    # instead assert the run still converges (bounded divergence).
    result = run_mlless(config_for(small_dataset, significance_v=0.7))
    assert result.converged


def test_max_steps_cap_respected(small_dataset):
    result = run_mlless(config_for(small_dataset, target_loss=-1.0, max_steps=17))
    assert result.total_steps == 17
    assert not result.converged


def test_max_time_cap_respected(small_dataset):
    result = run_mlless(
        config_for(small_dataset, target_loss=-1.0, max_steps=10_000,
                   max_time_s=3.0)
    )
    assert not result.converged
    assert result.exec_time < 60.0


def test_single_worker_runs(small_dataset):
    result = run_mlless(config_for(small_dataset, n_workers=1, target_loss=-1.0,
                                   max_steps=30))
    assert result.total_steps == 30


def test_workers_series_recorded(small_dataset):
    result = run_mlless(config_for(small_dataset))
    assert result.final_worker_count() == 4


def test_more_workers_slower_steps(small_dataset):
    durations = {}
    for p in (2, 8):
        cfg = config_for(small_dataset, n_workers=p, target_loss=-1.0,
                         max_steps=25)
        durations[p] = run_mlless(cfg).mean_step_duration()
    assert durations[8] > durations[2]


def test_driver_process_composes(small_dataset):
    world = build_world(seed=11)
    cfg = config_for(small_dataset, max_steps=20, target_loss=-1.0)
    runtime = make_runtime(world, cfg)
    driver = MLLessDriver(world.env, world.platform, runtime, meter=world.meter)
    proc = world.env.process(driver.run_process())
    world.env.run(until=proc)
    assert driver.result is not None
    assert driver.result.total_steps == 20


def test_config_validation(small_dataset):
    with pytest.raises(ValueError):
        config_for(small_dataset, n_workers=0)
    with pytest.raises(ValueError):
        config_for(small_dataset, significance_v=-0.5)
    with pytest.raises(ValueError):
        config_for(small_dataset, n_workers=1000)  # more workers than batches


def test_sync_model_property(small_dataset):
    assert config_for(small_dataset).sync_model == "bsp"
    assert config_for(small_dataset, significance_v=0.5).sync_model == "isp"
