"""Adaptive hybrid scaling: the controller must act mid-job on skew.

The dense MLP workload has near-uniform per-batch compute, so an
unfaulted pool shows almost no arrival skew — the controller stays
quiet — while an injected partial-pool straggler profile produces
exactly the sustained skew the SMLT-style policy is built to detect.
"""

import numpy as np

from repro import run_mlless
from repro.experiments.common import mlless_config
from repro.experiments.settings import WORKLOADS
from repro.faults import FaultProfile


def straggler_profile(rate=0.3, factor=6.0):
    """A partial-pool slowdown: some invocations run ``factor``x slower.

    The rate must stay well below 1.0 — when every worker straggles
    equally there is no arrival *skew* and the controller (correctly)
    never reacts.
    """
    return FaultProfile(
        name="straggle",
        straggler_rate=rate,
        straggler_factor=(factor, factor),
    )


def adaptive_config(faults=None, **overrides):
    kwargs = dict(
        n_workers=4,
        target_loss=-1.0,
        max_steps=40,
        sync="adaptive",
        faults=faults,
        # stragglers only — no crashes, so the recovery machinery (which
        # assumes a fixed sync family) stays off
        fault_tolerance=False if faults is not None else None,
    )
    kwargs.update(overrides)
    return mlless_config(WORKLOADS["mlp-synth"](), **kwargs)


def test_straggler_skew_triggers_the_sync_switch():
    result = run_mlless(adaptive_config(straggler_profile()))
    switches = result.monitor.series("sync_switch")
    assert len(switches) == 1
    assert 0.0 < switches.times[0] < result.exec_time
    assert result.total_steps == 40


def test_adaptive_evicts_persistent_straggler_before_switching():
    config = adaptive_config(
        straggler_profile(),
        adaptive_kwargs={"patience": 10, "evict_patience": 3},
    )
    result = run_mlless(config)
    evictions = result.monitor.series("adaptive_evict")
    assert len(evictions) == 1
    # the pool shrank through the ordinary scale-in release path
    assert result.final_worker_count() == 3
    _times, counts = result.monitor.series("workers").as_arrays()
    assert counts.max() == 4 and counts.min() == 3
    # the eviction budget is spent first; the still-diffuse skew then
    # escalates to the gossip switch
    switches = result.monitor.series("sync_switch")
    assert len(switches) == 1
    assert evictions.times[0] < switches.times[0]


def test_balanced_pool_never_switches():
    result = run_mlless(adaptive_config())
    assert len(result.monitor.series("sync_switch")) == 0
    assert len(result.monitor.series("adaptive_evict")) == 0
    assert result.total_steps == 40
    assert result.final_worker_count() == 4


def test_adaptive_run_is_deterministic():
    a = run_mlless(adaptive_config(straggler_profile()))
    b = run_mlless(adaptive_config(straggler_profile()))
    assert a.exec_time == b.exec_time
    np.testing.assert_array_equal(a.losses()[1], b.losses()[1])


def test_adaptive_still_trains_through_the_switch():
    result = run_mlless(adaptive_config(straggler_profile()))
    _times, losses = result.losses()
    assert losses[-1] < losses[0]
