"""Integration tests for auto-tuner-driven eviction inside real runs."""

from repro import AutoTunerConfig, JobConfig, run_mlless

from .conftest import make_model, make_optimizer


def tuned_config(dataset, **overrides):
    kwargs = dict(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=dataset,
        n_workers=6,
        significance_v=0.7,
        target_loss=-1.0,  # run to max_steps so the tuner has room
        max_steps=220,
        seed=11,
        autotuner=AutoTunerConfig(
            enabled=True, epoch_s=3.0, delta_s=1.5, s_threshold=0.5,
            min_workers=2,
        ),
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def test_autotuner_removes_workers(small_dataset):
    result = run_mlless(tuned_config(small_dataset))
    assert result.final_worker_count() < 6
    assert result.final_worker_count() >= 2


def test_autotuner_respects_min_workers(small_dataset):
    config = tuned_config(small_dataset)
    config.autotuner = AutoTunerConfig(
        enabled=True, epoch_s=1.0, delta_s=0.5, s_threshold=1.0, min_workers=4
    )
    result = run_mlless(config)
    assert result.final_worker_count() >= 4


def test_autotuner_lowers_cost(small_dataset):
    baseline = run_mlless(tuned_config(small_dataset, autotuner=AutoTunerConfig()))
    tuned = run_mlless(tuned_config(small_dataset))
    # Same number of steps to run (max_steps cap); the shrunken pool must
    # be cheaper per step on average.
    cost_per_step_base = baseline.total_cost / baseline.total_steps
    cost_per_step_tuned = tuned.total_cost / tuned.total_steps
    assert cost_per_step_tuned < cost_per_step_base


def test_workers_series_monotonically_decreasing(small_dataset):
    result = run_mlless(tuned_config(small_dataset))
    _times, counts = result.monitor.series("workers").as_arrays()
    assert all(b <= a for a, b in zip(counts, counts[1:]))


def test_training_still_converges_with_evictions(small_dataset):
    result = run_mlless(tuned_config(small_dataset, target_loss=0.8,
                                     max_steps=500))
    assert result.converged


def test_eviction_with_bsp_skips_reintegration(small_dataset):
    # v=0: replicas are identical; eviction must not break the run.
    config = tuned_config(small_dataset, significance_v=0.0)
    result = run_mlless(config)
    assert result.final_worker_count() < 6
    assert result.total_steps == 220


def test_eviction_without_reintegration_flag(small_dataset):
    config = tuned_config(small_dataset)
    config.reintegrate_on_evict = False
    result = run_mlless(config)
    assert result.final_worker_count() < 6
