"""Integration tests for the SSP synchronization extension."""

import numpy as np
import pytest

from repro import JobConfig, run_mlless
from repro.core import AutoTunerConfig

from .conftest import make_model, make_optimizer


def ssp_config(dataset, **overrides):
    kwargs = dict(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=dataset,
        n_workers=4,
        significance_v=0.7,
        target_loss=0.70,
        max_steps=300,
        seed=11,
        sync="ssp",
        ssp_staleness=2,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def test_ssp_run_converges(small_dataset):
    result = run_mlless(ssp_config(small_dataset))
    assert result.converged
    assert result.final_loss <= 0.70


def test_ssp_faster_steps_than_bsp(small_dataset):
    bsp = run_mlless(ssp_config(small_dataset, sync="bsp", target_loss=-1.0,
                                max_steps=40))
    ssp = run_mlless(ssp_config(small_dataset, ssp_staleness=3,
                                target_loss=-1.0, max_steps=40))
    assert ssp.mean_step_duration() < bsp.mean_step_duration()


def test_ssp_staleness_zero_still_progresses(small_dataset):
    result = run_mlless(ssp_config(small_dataset, ssp_staleness=0,
                                   target_loss=-1.0, max_steps=25))
    assert result.total_steps >= 25


def test_ssp_single_worker_matches_bsp_exactly(small_dataset):
    def run(sync):
        cfg = ssp_config(small_dataset, n_workers=1, sync=sync,
                         target_loss=-1.0, max_steps=20)
        return run_mlless(cfg).monitor.series("loss_by_step").as_arrays()[1]

    np.testing.assert_array_equal(run("ssp"), run("bsp"))


def test_ssp_deterministic(small_dataset):
    a = run_mlless(ssp_config(small_dataset))
    b = run_mlless(ssp_config(small_dataset))
    assert a.exec_time == b.exec_time
    np.testing.assert_array_equal(a.losses()[1], b.losses()[1])


def test_ssp_max_steps_cap(small_dataset):
    result = run_mlless(ssp_config(small_dataset, target_loss=-1.0,
                                   max_steps=30))
    assert not result.converged
    assert result.total_steps == 30


def test_ssp_rejects_autotuner(small_dataset):
    with pytest.raises(ValueError, match="auto-tuner"):
        ssp_config(
            small_dataset,
            autotuner=AutoTunerConfig(enabled=True),
        )


def test_ssp_validates_staleness(small_dataset):
    with pytest.raises(ValueError):
        ssp_config(small_dataset, ssp_staleness=-1)
    with pytest.raises(ValueError):
        ssp_config(small_dataset, sync="async")


def test_ssp_with_bsp_filter_off(small_dataset):
    # SSP composes with v=0 (every update broadcast, no barrier).
    result = run_mlless(ssp_config(small_dataset, significance_v=0.0))
    assert result.converged
