"""Shared fixtures for integration tests: a small PMF workload."""

import pytest

from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD

SMALL_SPEC = MovieLensSpec(
    n_users=120, n_movies=100, n_ratings=8_000, rank=4, batch_size=500
)


@pytest.fixture(scope="session")
def small_dataset():
    return movielens_like(SMALL_SPEC, seed=2)


def make_model():
    return PMF(
        SMALL_SPEC.n_users, SMALL_SPEC.n_movies, rank=6, l2=0.02,
        rating_offset=3.5,
    )


def make_optimizer():
    return MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9, nesterov=True)
