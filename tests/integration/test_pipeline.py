"""Pipeline-parallel MLP runs: overlap, cost accounting, validation."""

import numpy as np
import pytest

from repro import JobConfig, run_mlless
from repro.experiments.common import mlless_config
from repro.experiments.settings import WORKLOADS
from repro.ml.data import MLPSpec, mlp_synth
from repro.ml.models import LayeredMLP
from repro.ml.optim import Adam
from repro.scenarios.kpi import reconcile_single_job

from .conftest import make_model, make_optimizer


def pipeline_config(**overrides):
    kwargs = dict(
        n_workers=3,
        target_loss=-1.0,  # run to max_steps: the overlap assertions
        max_steps=25,      # need the full window
        seed=5,
        pipeline_stages=3,
        micro_batches=4,
    )
    kwargs.update(overrides)
    return mlless_config(WORKLOADS["mlp-synth"](), **kwargs)


def net_series(result, name):
    """(peak, net) of a +1/-1 delta series from the run monitor."""
    levels = np.cumsum(result.monitor.series(name).values)
    return float(levels.max()), float(levels[-1])


def test_pipeline_trains_with_overlapping_micro_batches():
    result = run_mlless(pipeline_config())
    assert result.total_steps == 25
    _times, losses = result.losses()
    assert losses[-1] < losses[0]
    # >= 2 micro-batches genuinely in flight at once, and every injected
    # micro-batch drained by the end of the run (no leaks)
    inflight_peak, inflight_net = net_series(result, "pipeline_inflight")
    assert inflight_peak >= 2
    assert inflight_net == 0
    # all three stage functions were busy simultaneously
    busy_peak, busy_net = net_series(result, "stage_busy")
    assert busy_peak == 3
    assert busy_net == 0


def test_pipeline_bill_reconciles():
    result = run_mlless(pipeline_config())
    reconciliation = reconcile_single_job(result)
    assert reconciliation["abs_error_usd"] <= 1e-9
    assert result.meter.total_cost() > 0


def test_pipeline_is_deterministic():
    a = run_mlless(pipeline_config())
    b = run_mlless(pipeline_config())
    assert a.exec_time == b.exec_time
    np.testing.assert_array_equal(a.losses()[1], b.losses()[1])


def test_pipeline_local_backend_matches_sim_loss():
    config = dict(max_steps=10, micro_batches=2)
    sim = run_mlless(pipeline_config(**config))
    local = run_mlless(pipeline_config(**config), backend="local")
    assert local.total_steps == sim.total_steps == 10
    np.testing.assert_allclose(
        local.losses()[1], sim.losses()[1], rtol=0.0, atol=1e-9
    )


def test_procs_backend_rejects_pipeline():
    with pytest.raises(ValueError, match="procs backend does not support"):
        run_mlless(pipeline_config(max_steps=2), backend="procs")


# -- configuration validation ------------------------------------------------


def mlp_job(**overrides):
    spec = MLPSpec(n_samples=900, n_features=8, hidden=(6, 6), batch_size=150)
    kwargs = dict(
        model=LayeredMLP([8, 6, 6, 1]),
        make_optimizer=lambda: Adam(lr=0.01),
        dataset=mlp_synth(spec, seed=3),
        n_workers=3,
        max_steps=5,
        pipeline_stages=3,
        micro_batches=2,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def test_pipeline_requires_bsp_sync():
    with pytest.raises(ValueError, match="sync must be 'bsp'"):
        mlp_job(sync="ssp")


def test_pipeline_rejects_significance_filter():
    with pytest.raises(ValueError, match="data-parallel-only"):
        mlp_job(significance_v=0.5)


def test_pipeline_requires_one_worker_per_stage():
    with pytest.raises(ValueError, match="must equal"):
        mlp_job(n_workers=2)


def test_pipeline_requires_stageable_model(small_dataset):
    with pytest.raises(ValueError, match="not stageable"):
        JobConfig(
            model=make_model(),
            make_optimizer=make_optimizer,
            dataset=small_dataset,
            n_workers=3,
            max_steps=5,
            pipeline_stages=3,
        )


def test_pipeline_depth_capped_by_layer_count():
    # 3 weight layers cannot fill 4 stages — fail at config time
    with pytest.raises(ValueError, match="n_stages"):
        mlp_job(n_workers=4, pipeline_stages=4)
