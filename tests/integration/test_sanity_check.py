"""The paper's sanity check (§6.1).

"We fixed a random seed, and trained all models in each system using a
single worker.  We then verified that the convergence rate at each step
was exactly the same in all systems."
"""

import numpy as np
import pytest

from repro import JobConfig, run_mlless
from repro.baselines import (
    PyWrenMLConfig,
    PyWrenMLTrainer,
    ServerfulConfig,
    ServerfulTrainer,
)
from repro.experiments.common import build_world

from .conftest import make_model, make_optimizer

STEPS = 25
SEED = 21


def losses_by_step(result):
    return result.monitor.series("loss_by_step").as_arrays()[1]


@pytest.fixture(scope="module")
def single_worker_losses(small_dataset):
    runs = {}

    config = JobConfig(
        model=make_model(), make_optimizer=make_optimizer,
        dataset=small_dataset, n_workers=1, significance_v=0.0,
        target_loss=-1.0, max_steps=STEPS, seed=SEED,
    )
    runs["mlless"] = losses_by_step(run_mlless(config))

    world = build_world(seed=SEED)
    trainer = ServerfulTrainer(world.env, world.streams, world.cos,
                               meter=world.meter)
    runs["serverful"] = losses_by_step(
        trainer.run(
            ServerfulConfig(
                model=make_model(), make_optimizer=make_optimizer,
                dataset=small_dataset, n_ranks=1, target_loss=-1.0,
                max_steps=STEPS, seed=SEED,
            )
        )
    )

    world = build_world(seed=SEED)
    pywren = PyWrenMLTrainer(world.env, world.platform, world.cos,
                             meter=world.meter)
    runs["pywren"] = losses_by_step(
        pywren.run(
            PyWrenMLConfig(
                model=make_model(), make_optimizer=make_optimizer,
                dataset=small_dataset, n_workers=1, target_loss=-1.0,
                max_steps=STEPS, seed=SEED,
            )
        )
    )
    return runs


def test_all_systems_report_full_history(single_worker_losses):
    for system, losses in single_worker_losses.items():
        assert len(losses) == STEPS, system


def test_mlless_matches_serverful_exactly(single_worker_losses):
    np.testing.assert_array_equal(
        single_worker_losses["mlless"], single_worker_losses["serverful"]
    )


def test_mlless_matches_pywren_exactly(single_worker_losses):
    np.testing.assert_array_equal(
        single_worker_losses["mlless"], single_worker_losses["pywren"]
    )


def test_losses_not_constant(single_worker_losses):
    losses = single_worker_losses["mlless"]
    assert losses[-1] < losses[0]


def test_isp_single_worker_also_identical(small_dataset):
    # With one worker there are no peers: ISP filtering must not change
    # the local trajectory at all.
    def run(v):
        config = JobConfig(
            model=make_model(), make_optimizer=make_optimizer,
            dataset=small_dataset, n_workers=1, significance_v=v,
            target_loss=-1.0, max_steps=STEPS, seed=SEED,
        )
        return losses_by_step(run_mlless(config))

    np.testing.assert_array_equal(run(0.0), run(0.9))
