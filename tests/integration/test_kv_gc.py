"""The supervisor garbage-collects consumed update keys from the KV store."""

from repro import JobConfig, run_mlless
from repro.experiments.common import build_world

from .conftest import make_model, make_optimizer


def test_old_update_keys_are_collected(small_dataset):
    world = build_world(seed=11)
    config = JobConfig(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=small_dataset,
        n_workers=4,
        significance_v=0.0,   # BSP: every worker pushes every step
        target_loss=-1.0,
        max_steps=40,
        seed=11,
    )
    run_mlless(config, world=world)
    # Without GC there would be ~40 steps x 4 workers keys; with GC only
    # the last couple of steps survive.
    assert world.kv.key_count() < 4 * 5
    assert world.kv.metrics.requests.get("delete", 0) > 100


def test_gc_does_not_break_training(small_dataset):
    config = JobConfig(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=small_dataset,
        n_workers=4,
        significance_v=0.7,
        target_loss=0.70,
        max_steps=400,
        seed=11,
    )
    result = run_mlless(config)
    assert result.converged
