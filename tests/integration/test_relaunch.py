"""Checkpoint/relaunch at the FaaS duration cap (workers and supervisor)."""

from repro import JobConfig, run_mlless
from repro.experiments.common import build_world
from repro.faas import FaaSLimits, FaaSPlatform
from repro.sim import RandomStreams

from .conftest import make_model, make_optimizer


def run_with_duration_cap(dataset, cap_s, margin_s, max_steps=120):
    """Run MLLess on a platform whose functions die after ``cap_s``."""
    world = build_world(seed=11)
    # Replace the platform with one enforcing a short duration cap.
    world.platform = FaaSPlatform(
        world.env,
        RandomStreams(seed=123),
        limits=FaaSLimits(max_duration_s=cap_s),
    )
    world.meter.faas = world.platform.billing
    config = JobConfig(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=dataset,
        n_workers=3,
        significance_v=0.7,
        target_loss=-1.0,
        max_steps=max_steps,
        seed=11,
        relaunch_margin_s=margin_s,
    )
    return world, run_mlless(config, world=world)


def test_run_completes_across_relaunches(small_dataset):
    # The run outlives the 6 s cap several times over; checkpointing at a
    # 2 s margin must carry it through.
    world, result = run_with_duration_cap(small_dataset, cap_s=6.0, margin_s=2.0)
    assert result.total_steps == 120
    # Multiple activations per role prove relaunches happened.
    worker_acts = [
        a for a in world.platform.activations if a.function == "mlless-worker"
    ]
    assert len(worker_acts) > 3


def test_no_activation_hits_the_cap(small_dataset):
    world, _result = run_with_duration_cap(small_dataset, cap_s=6.0, margin_s=2.0)
    assert all(r.ok for r in world.platform.billing.records)


def test_relaunch_preserves_loss_trajectory(small_dataset):
    # A run with relaunches must produce the same loss-by-step sequence as
    # an uncapped run (checkpointing is transparent to the algorithm).
    _w1, capped = run_with_duration_cap(
        small_dataset, cap_s=6.0, margin_s=2.0, max_steps=60
    )
    world = build_world(seed=11)
    config = JobConfig(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=small_dataset,
        n_workers=3,
        significance_v=0.7,
        target_loss=-1.0,
        max_steps=60,
        seed=11,
    )
    uncapped = run_mlless(config, world=world)
    import numpy as np

    np.testing.assert_allclose(
        capped.monitor.series("loss_by_step").as_arrays()[1],
        uncapped.monitor.series("loss_by_step").as_arrays()[1],
        rtol=1e-9,
    )


def test_relaunch_overhead_is_modest(small_dataset):
    # Checkpoint/relaunch adds activations but only small wall-time
    # overhead (a KV write + a warm dispatch each time).
    _w1, capped = run_with_duration_cap(
        small_dataset, cap_s=6.0, margin_s=2.0, max_steps=60
    )
    world = build_world(seed=11)
    config = JobConfig(
        model=make_model(),
        make_optimizer=make_optimizer,
        dataset=small_dataset,
        n_workers=3,
        significance_v=0.7,
        target_loss=-1.0,
        max_steps=60,
        seed=11,
    )
    uncapped = run_mlless(config, world=world)
    assert capped.exec_time < uncapped.exec_time * 1.25
