"""Unit tests for the models: gradients checked against numerical ones."""

import numpy as np
import pytest

from repro.ml.data.dataset import LRBatch, PMFBatch
from repro.ml.models import LinearRegression, LogisticRegression, PMF
from repro.ml.sparse import CSRMatrix


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def small_lr_batch(seed=0, n=8, d=6):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, d)) * (rng.random((n, d)) < 0.5)
    y = (rng.random(n) < 0.5).astype(np.float64)
    return LRBatch(CSRMatrix.from_dense(dense), y)


# ---------------------------------------------------- logistic regression
def test_lr_gradient_matches_numerical():
    model = LogisticRegression(n_features=6, l2=0.0)
    batch = small_lr_batch()
    rng = np.random.default_rng(1)
    params = model.init_params(rng)
    params["w"][:] = rng.normal(size=6) * 0.5
    params["b"][0] = 0.3

    loss, grad = model.gradient(params, batch)
    assert loss == pytest.approx(model.loss(params, batch))

    num_w = numerical_grad(lambda: model.loss(params, batch), params["w"])
    np.testing.assert_allclose(grad["w"].to_dense(), num_w, atol=1e-6)
    num_b = numerical_grad(lambda: model.loss(params, batch), params["b"])
    np.testing.assert_allclose(grad["b"].to_dense(), num_b, atol=1e-6)


def test_lr_gradient_with_l2_regularization():
    model = LogisticRegression(n_features=6, l2=0.1)
    batch = small_lr_batch()
    rng = np.random.default_rng(2)
    params = model.init_params(rng)
    params["w"][:] = rng.normal(size=6)

    plain = LogisticRegression(n_features=6, l2=0.0)
    _, g_plain = plain.gradient(params, batch)
    _, g_reg = model.gradient(params, batch)
    idx = g_reg["w"].indices
    np.testing.assert_allclose(
        g_reg["w"].values,
        g_plain["w"].values + 0.1 * params["w"][idx],
        atol=1e-12,
    )


def test_lr_init_zero_by_default():
    model = LogisticRegression(n_features=4)
    params = model.init_params(np.random.default_rng(0))
    np.testing.assert_allclose(params["w"], 0)


def test_lr_init_scale_randomizes():
    model = LogisticRegression(n_features=4, init_scale=0.1)
    params = model.init_params(np.random.default_rng(0))
    assert np.any(params["w"] != 0)


def test_lr_gradient_is_sparse_on_support():
    model = LogisticRegression(n_features=100)
    batch = small_lr_batch(d=6)
    # embed the 6-col batch into 100 features
    wide = LRBatch(
        CSRMatrix(batch.X.indptr, batch.X.indices, batch.X.data, (8, 100)),
        batch.y,
    )
    params = model.init_params(np.random.default_rng(0))
    _, grad = model.gradient(params, wide)
    assert grad["w"].nnz <= 6


def test_lr_predict_probabilities_in_unit_interval():
    model = LogisticRegression(n_features=6)
    batch = small_lr_batch()
    params = model.init_params(np.random.default_rng(0))
    probs = model.predict(params, batch)
    assert np.all((probs >= 0) & (probs <= 1))


def test_lr_cost_model_methods():
    model = LogisticRegression(n_features=1000)
    batch = small_lr_batch(d=6)
    wide = LRBatch(
        CSRMatrix(batch.X.indptr, batch.X.indices, batch.X.data, (8, 1000)),
        batch.y,
    )
    assert model.sparse_step_flops(wide) < model.dense_step_flops(wide)
    assert model.dense_gradient_bytes() == 1001 * 8
    assert model.sparse_entries(wide) == wide.X.nnz


def test_lr_validates_arguments():
    with pytest.raises(ValueError):
        LogisticRegression(n_features=0)
    with pytest.raises(ValueError):
        LogisticRegression(n_features=5, l2=-1)


# --------------------------------------------------------------------- PMF
def small_pmf_batch(seed=0, n=10, users=5, movies=4):
    rng = np.random.default_rng(seed)
    return PMFBatch(
        rng.integers(0, users, n).astype(np.int32),
        rng.integers(0, movies, n).astype(np.int32),
        rng.uniform(1, 5, n),
    )


def test_pmf_gradient_matches_numerical():
    model = PMF(n_users=5, n_movies=4, rank=3, l2=0.05, init_scale=0.3)
    batch = small_pmf_batch()
    params = model.init_params(np.random.default_rng(1))

    def full_loss():
        # gradient() differentiates MSE + (l2/n) * 0.5*||.||^2-style rows;
        # reconstruct the exact objective its gradient encodes.
        preds = model.predict(params, batch)
        err = preds - batch.ratings
        reg = 0.0
        for rows, tensor in ((batch.users, params["U"]), (batch.movies, params["M"])):
            reg += np.sum(tensor[rows] ** 2)
        return float(np.mean(err**2) + 0.5 * model.l2 * reg / batch.n)

    _, grad = model.gradient(params, batch)
    num_U = numerical_grad(full_loss, params["U"])
    num_M = numerical_grad(full_loss, params["M"])
    np.testing.assert_allclose(grad["U"].to_dense(), num_U, atol=1e-5)
    np.testing.assert_allclose(grad["M"].to_dense(), num_M, atol=1e-5)


def test_pmf_loss_is_rmse():
    model = PMF(n_users=3, n_movies=3, rank=2, l2=0.0, rating_offset=3.0)
    params = model.init_params(np.random.default_rng(0))
    params["U"][:] = 0
    params["M"][:] = 0
    batch = PMFBatch(
        np.array([0, 1], dtype=np.int32),
        np.array([0, 1], dtype=np.int32),
        np.array([3.0, 5.0]),
    )
    # predictions are exactly the offset 3.0 -> errors [0, 2]
    assert model.loss(params, batch) == pytest.approx(np.sqrt(2.0))


def test_pmf_gradient_touches_only_batch_rows():
    model = PMF(n_users=10, n_movies=10, rank=2, l2=0.0)
    params = model.init_params(np.random.default_rng(0))
    batch = PMFBatch(
        np.array([1, 1], dtype=np.int32),
        np.array([2, 3], dtype=np.int32),
        np.array([4.0, 2.0]),
    )
    _, grad = model.gradient(params, batch)
    touched_users = set(grad["U"].indices // 2)
    touched_movies = set(grad["M"].indices // 2)
    assert touched_users == {1}
    assert touched_movies == {2, 3}


def test_pmf_duplicate_rows_summed():
    model = PMF(n_users=2, n_movies=2, rank=2, l2=0.0)
    params = model.init_params(np.random.default_rng(0))
    single = PMFBatch(
        np.array([0], dtype=np.int32), np.array([0], dtype=np.int32),
        np.array([4.0]),
    )
    double = PMFBatch(
        np.array([0, 0], dtype=np.int32), np.array([0, 0], dtype=np.int32),
        np.array([4.0, 4.0]),
    )
    _, g1 = model.gradient(params, single)
    _, g2 = model.gradient(params, double)
    # Same mean gradient: duplicates sum but n doubles.
    np.testing.assert_allclose(g1["U"].to_dense(), g2["U"].to_dense(), atol=1e-12)


def test_pmf_cost_model_methods():
    model = PMF(n_users=100, n_movies=200, rank=8)
    batch = small_pmf_batch()
    assert model.dense_gradient_bytes() == 300 * 8 * 8
    assert model.sparse_entries(batch) == 2 * batch.n * 8
    assert model.sparse_step_flops(batch) < model.dense_step_flops(batch)


def test_pmf_validates_arguments():
    with pytest.raises(ValueError):
        PMF(n_users=0, n_movies=5)
    with pytest.raises(ValueError):
        PMF(n_users=5, n_movies=5, l2=-0.1)


# -------------------------------------------------------- linear regression
def test_linreg_gradient_matches_numerical():
    model = LinearRegression(n_features=6)
    rng = np.random.default_rng(3)
    dense = rng.random((8, 6))
    batch = LRBatch(CSRMatrix.from_dense(dense), rng.normal(size=8))
    params = model.init_params(rng)
    params["w"][:] = rng.normal(size=6)

    _, grad = model.gradient(params, batch)
    num_w = numerical_grad(lambda: model.loss(params, batch), params["w"])
    np.testing.assert_allclose(grad["w"].to_dense(), num_w, atol=1e-5)
    num_b = numerical_grad(lambda: model.loss(params, batch), params["b"])
    np.testing.assert_allclose(grad["b"].to_dense(), num_b, atol=1e-5)


def test_linreg_recovers_planted_solution():
    rng = np.random.default_rng(4)
    w_true = np.array([1.0, -2.0, 0.5])
    X = rng.normal(size=(200, 3))
    y = X @ w_true
    batch = LRBatch(CSRMatrix.from_dense(X), y)
    model = LinearRegression(n_features=3)
    params = model.init_params(rng)
    from repro.ml.optim import SGD

    opt = SGD(lr=0.1)
    for t in range(1, 200):
        _, grad = model.gradient(params, batch)
        params.apply(opt.step(params, grad, t))
    np.testing.assert_allclose(params["w"], w_true, atol=1e-3)
