"""Tests for the extension modules: RMSProp, BiasedPMF, AUC/accuracy."""

import numpy as np
import pytest

from repro.ml import ModelUpdate, ParameterSet, accuracy, auc
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.data.dataset import PMFBatch
from repro.ml.models import PMF, BiasedPMF
from repro.ml.optim import RMSProp, SGD
from repro.ml.sparse import SparseDelta


def dense_grad(values):
    return ModelUpdate({"w": SparseDelta.from_dense(np.asarray(values, float))})


# ----------------------------------------------------------------- RMSProp
def test_rmsprop_matches_reference():
    opt = RMSProp(lr=0.01, alpha=0.9, eps=1e-8)
    p = ParameterSet({"w": np.zeros(1)})
    sq = 0.0
    for t in range(1, 6):
        g = float(t)
        sq = 0.9 * sq + 0.1 * g * g
        expected = -0.01 * g / (np.sqrt(sq) + 1e-8)
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(expected)


def test_rmsprop_with_momentum():
    opt = RMSProp(lr=0.01, alpha=0.9, momentum=0.5)
    p = ParameterSet({"w": np.zeros(1)})
    sq = buf = 0.0
    for t in range(1, 4):
        g = 1.0
        sq = 0.9 * sq + 0.1
        step = g / (np.sqrt(sq) + 1e-8)
        buf = 0.5 * buf + step
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(-0.01 * buf)


def test_rmsprop_validates():
    with pytest.raises(ValueError):
        RMSProp(lr=0.1, alpha=1.0)
    with pytest.raises(ValueError):
        RMSProp(lr=0.1, eps=0)
    with pytest.raises(ValueError):
        RMSProp(lr=0.1, momentum=1.0)


# --------------------------------------------------------------- BiasedPMF
def small_batch(seed=0, n=20, users=6, movies=5):
    rng = np.random.default_rng(seed)
    return PMFBatch(
        rng.integers(0, users, n).astype(np.int32),
        rng.integers(0, movies, n).astype(np.int32),
        rng.uniform(1, 5, n),
    )


def test_biased_pmf_gradient_matches_numerical():
    model = BiasedPMF(6, 5, rank=3, l2=0.05, init_scale=0.3)
    batch = small_batch()
    params = model.init_params(np.random.default_rng(1))
    params["bu"][:] = np.random.default_rng(2).normal(0, 0.2, 6)
    params["bm"][:] = np.random.default_rng(3).normal(0, 0.2, 5)

    def objective():
        err = model.predict(params, batch) - batch.ratings
        reg = 0.0
        for rows, tensor in (
            (batch.users, params["U"]),
            (batch.movies, params["M"]),
        ):
            reg += np.sum(tensor[rows] ** 2)
        for rows, tensor in (
            (batch.users, params["bu"]),
            (batch.movies, params["bm"]),
        ):
            reg += np.sum(tensor[rows] ** 2)
        return float(np.mean(err**2) + 0.5 * model.l2 * reg / batch.n)

    _, grad = model.gradient(params, batch)

    def numerical(tensor):
        out = np.zeros_like(tensor)
        flat, gflat = tensor.ravel(), out.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + 1e-6
            hi = objective()
            flat[i] = orig - 1e-6
            lo = objective()
            flat[i] = orig
            gflat[i] = (hi - lo) / 2e-6
        return out

    for name in ("U", "M", "bu", "bm"):
        np.testing.assert_allclose(
            grad[name].to_dense(), numerical(params[name]), atol=1e-5,
            err_msg=name,
        )


def test_biased_pmf_fits_biased_data_better_than_plain():
    # The synthetic generator plants user/movie biases; the biased model
    # must reach a lower RMSE than plain PMF with the same training.
    spec = MovieLensSpec(n_users=80, n_movies=60, n_ratings=6_000, batch_size=500)
    ds = movielens_like(spec, seed=7)

    def train(model):
        params = model.init_params(np.random.default_rng(0))
        opt = SGD(lr=1.0)
        for t in range(1, 160):
            batch = ds[(t - 1) % len(ds)]
            loss, grad = model.gradient(params, batch)
            params.apply(opt.step(params, grad, t))
        return np.mean(
            [model.loss(params, b) for b in ds.batches[:4]]
        )

    plain = train(PMF(80, 60, rank=4, l2=0.02, rating_offset=3.5))
    biased = train(BiasedPMF(80, 60, rank=4, l2=0.02, rating_offset=3.5))
    assert biased < plain


def test_biased_pmf_cost_model():
    model = BiasedPMF(100, 50, rank=8)
    batch = small_batch()
    assert model.dense_gradient_bytes() == 150 * 9 * 8
    assert model.sparse_entries(batch) == 2 * batch.n * 9
    assert model.sparse_step_flops(batch) < model.dense_step_flops(batch)


def test_biased_pmf_in_mlless_run():
    from repro import JobConfig, run_mlless

    spec = MovieLensSpec(n_users=60, n_movies=40, n_ratings=2_000, batch_size=250)
    ds = movielens_like(spec, seed=1)
    config = JobConfig(
        model=BiasedPMF(60, 40, rank=3, rating_offset=3.5),
        make_optimizer=lambda: SGD(lr=1.0),
        dataset=ds,
        n_workers=4,
        significance_v=0.7,
        target_loss=-1.0,
        max_steps=15,
        seed=2,
    )
    result = run_mlless(config)
    assert result.total_steps == 15


# -------------------------------------------------------------------- AUC
def test_auc_perfect_separation():
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    labels = np.array([0.0, 0.0, 1.0, 1.0])
    assert auc(scores, labels) == 1.0
    assert auc(-scores, labels) == 0.0


def test_auc_random_is_half():
    rng = np.random.default_rng(0)
    scores = rng.random(4000)
    labels = (rng.random(4000) < 0.5).astype(float)
    assert abs(auc(scores, labels) - 0.5) < 0.03


def test_auc_handles_ties():
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    labels = np.array([0.0, 1.0, 0.0, 1.0])
    assert auc(scores, labels) == pytest.approx(0.5)


def test_auc_matches_pairwise_definition():
    rng = np.random.default_rng(1)
    scores = rng.random(60)
    labels = (rng.random(60) < 0.4).astype(float)
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    expected = wins / (len(pos) * len(neg))
    assert auc(scores, labels) == pytest.approx(expected)


def test_auc_validates():
    with pytest.raises(ValueError):
        auc(np.ones(3), np.ones(3))  # no negatives
    with pytest.raises(ValueError):
        auc(np.ones(3), np.zeros(4))


def test_accuracy():
    scores = np.array([0.2, 0.7, 0.6, 0.4])
    labels = np.array([0.0, 1.0, 0.0, 1.0])
    assert accuracy(scores, labels) == 0.5
    assert accuracy(scores, labels, threshold=0.65) == 0.75
