"""Unit tests for the serverful and PyWren baseline trainers."""

import numpy as np
import pytest

from repro.baselines import (
    PyWrenMLConfig,
    PyWrenMLTrainer,
    ServerfulConfig,
    ServerfulTrainer,
)
from repro.experiments.common import build_world
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD

SPEC = MovieLensSpec(n_users=80, n_movies=60, n_ratings=4_000, batch_size=250)


@pytest.fixture(scope="module")
def dataset():
    return movielens_like(SPEC, seed=4)


def model():
    return PMF(SPEC.n_users, SPEC.n_movies, rank=4, l2=0.02, rating_offset=3.5)


def optimizer():
    return MomentumSGD(lr=InverseSqrtLR(6.0), momentum=0.9, nesterov=True)


def serverful(dataset, **overrides):
    world = build_world(seed=5)
    trainer = ServerfulTrainer(world.env, world.streams, world.cos,
                               meter=world.meter)
    kwargs = dict(
        model=model(), make_optimizer=optimizer, dataset=dataset,
        n_ranks=4, target_loss=-1.0, max_steps=30, seed=5,
    )
    kwargs.update(overrides)
    return world, trainer.run(ServerfulConfig(**kwargs))


def pywren(dataset, **overrides):
    world = build_world(seed=5)
    trainer = PyWrenMLTrainer(world.env, world.platform, world.cos,
                              meter=world.meter)
    kwargs = dict(
        model=model(), make_optimizer=optimizer, dataset=dataset,
        n_workers=4, target_loss=-1.0, max_steps=12, seed=5,
    )
    kwargs.update(overrides)
    return world, trainer.run(PyWrenMLConfig(**kwargs))


# -------------------------------------------------------------- serverful
def test_serverful_runs_requested_steps(dataset):
    _world, result = serverful(dataset)
    assert result.total_steps == 30
    assert result.system == "serverful"


def test_serverful_boot_excluded_from_exec_time(dataset):
    _world, result = serverful(dataset)
    assert result.setup_duration > 30  # VM boot
    assert result.exec_time < result.wall_time


def test_serverful_cost_is_vm_leases_only(dataset):
    _world, result = serverful(dataset)
    breakdown = result.meter.breakdown()
    assert breakdown["B1.4x8"] > 0
    # No function activations billed in a serverful run.
    assert breakdown.get("functions", 0.0) == 0.0


def test_serverful_vm_count_matches_ranks(dataset):
    cfg = ServerfulConfig(
        model=model(), make_optimizer=optimizer, dataset=dataset, n_ranks=9
    )
    assert cfg.n_vms == 3  # ceil(9/4)
    assert cfg.ranks_per_vm == 4


def test_serverful_target_stop(dataset):
    _world, result = serverful(dataset, target_loss=0.85, max_steps=500)
    assert result.converged
    assert result.final_loss <= 0.85


def test_serverful_deterministic(dataset):
    _w1, r1 = serverful(dataset)
    _w2, r2 = serverful(dataset)
    np.testing.assert_array_equal(r1.losses()[1], r2.losses()[1])
    assert r1.exec_time == r2.exec_time


def test_serverful_tree_collective_slower_for_large_models(dataset):
    _w1, ring = serverful(dataset, collective="ring", max_steps=10)
    _w2, tree = serverful(dataset, collective="tree", max_steps=10)
    # Identical arithmetic, different collective cost model.
    np.testing.assert_array_equal(ring.losses()[1], tree.losses()[1])
    assert tree.exec_time >= ring.exec_time


def test_serverful_validates(dataset):
    with pytest.raises(ValueError):
        ServerfulConfig(model=model(), make_optimizer=optimizer,
                        dataset=dataset, n_ranks=0)
    with pytest.raises(ValueError):
        ServerfulConfig(model=model(), make_optimizer=optimizer,
                        dataset=dataset, n_ranks=2, collective="mesh")
    with pytest.raises(ValueError):
        ServerfulConfig(model=model(), make_optimizer=optimizer,
                        dataset=dataset, n_ranks=10_000)


def test_serverful_max_time_cap(dataset):
    _world, result = serverful(dataset, max_steps=10_000, max_time_s=10.0)
    assert not result.converged
    assert result.exec_time < 120


# ----------------------------------------------------------------- pywren
def test_pywren_runs_requested_steps(dataset):
    _world, result = pywren(dataset)
    assert result.total_steps == 12
    assert result.system == "pywren"


def test_pywren_bills_map_and_reduce_activations(dataset):
    world, result = pywren(dataset)
    functions = [r.function for r in world.platform.billing.records]
    assert functions.count("pywren-ml-map") == 12 * 4
    assert functions.count("pywren-ml-reduce") == 12


def test_pywren_cost_is_functions_only(dataset):
    _world, result = pywren(dataset)
    assert set(result.meter.breakdown()) == {"functions"}


def test_pywren_slower_per_step_than_serverful(dataset):
    _w1, pw = pywren(dataset, max_steps=8)
    _w2, sf = serverful(dataset, max_steps=8)
    assert pw.mean_step_duration() > sf.mean_step_duration()


def test_pywren_matches_serverful_trajectory(dataset):
    # Identical averaging semantics: the two baselines follow the same
    # loss-by-step sequence given the same seed.
    _w1, pw = pywren(dataset, max_steps=10)
    _w2, sf = serverful(dataset, max_steps=10)
    np.testing.assert_allclose(
        pw.monitor.series("loss_by_step").as_arrays()[1],
        sf.monitor.series("loss_by_step").as_arrays()[1],
        rtol=1e-9,
    )


def test_pywren_moves_dense_payloads(dataset):
    world, _result = pywren(dataset, max_steps=3)
    # The map tasks upload dense gradients: bytes_in per step must be at
    # least n_workers * dense model size.
    dense_bytes = model().dense_gradient_bytes()
    assert world.cos.metrics.bytes_in > 3 * 4 * dense_bytes * 0.5


def test_pywren_validates(dataset):
    with pytest.raises(ValueError):
        PyWrenMLConfig(model=model(), make_optimizer=optimizer,
                       dataset=dataset, n_workers=0)
    with pytest.raises(ValueError):
        PyWrenMLConfig(model=model(), make_optimizer=optimizer,
                       dataset=dataset, n_workers=10_000)
