"""Unit tests for the experiments layer: workloads, config builders."""

import pytest

from repro.experiments.common import build_world, mlless_config
from repro.experiments.settings import WORKLOADS, make_workload
from repro.ml.models import LogisticRegression, PMF
from repro.ml.optim import Adam, MomentumSGD


def test_registry_has_the_table1_workloads_plus_mlp():
    assert set(WORKLOADS) == {"lr-criteo", "pmf-ml10m", "pmf-ml20m", "mlp-synth"}


def test_lr_workload_matches_table1():
    wl = make_workload("lr-criteo")
    assert isinstance(wl.model(), LogisticRegression)
    assert isinstance(wl.optimizer(), Adam)
    assert wl.metric == "bce"


def test_pmf_workloads_match_table1():
    for name in ("pmf-ml10m", "pmf-ml20m"):
        wl = make_workload(name)
        model = wl.model()
        assert isinstance(model, PMF)
        opt = wl.optimizer()
        assert isinstance(opt, MomentumSGD) and opt.nesterov
        assert wl.metric == "rmse"


def test_ml20m_is_larger_than_ml10m():
    m10 = make_workload("pmf-ml10m").model()
    m20 = make_workload("pmf-ml20m").model()
    assert m20.n_users > m10.n_users
    assert m20.n_movies > m10.n_movies
    assert m20.rank >= m10.rank


def test_deep_target_is_stricter():
    for name in WORKLOADS:
        wl = make_workload(name)
        assert wl.deep_target_loss < wl.target_loss


def test_make_workload_overrides():
    wl = make_workload("lr-criteo", target_loss=0.5, default_workers=6)
    assert wl.target_loss == 0.5
    assert wl.default_workers == 6


def test_make_workload_unknown_name():
    with pytest.raises(KeyError):
        make_workload("gpt-17")


def test_workload_dataset_deterministic():
    wl = make_workload("pmf-ml10m")
    a = wl.dataset(seed=3)
    b = wl.dataset(seed=3)
    import numpy as np

    np.testing.assert_array_equal(a[0].ratings, b[0].ratings)


def test_mlless_config_builder_defaults():
    wl = make_workload("pmf-ml10m")
    ds = wl.dataset(seed=1)
    cfg = mlless_config(wl, n_workers=4, dataset=ds)
    assert cfg.n_workers == 4
    assert cfg.significance_v == 0.0
    assert cfg.target_loss == wl.target_loss
    assert not cfg.autotuner.enabled


def test_mlless_config_builder_autotune_kwargs():
    wl = make_workload("pmf-ml10m")
    ds = wl.dataset(seed=1)
    cfg = mlless_config(
        wl, n_workers=4, autotune=True, dataset=ds,
        autotuner_kwargs={"epoch_s": 99.0},
    )
    assert cfg.autotuner.enabled
    assert cfg.autotuner.epoch_s == 99.0
    assert cfg.autotuner.delta_s == 2.5  # default preserved


def test_build_world_isolated_instances():
    w1 = build_world(seed=1)
    w2 = build_world(seed=1)
    assert w1.env is not w2.env
    assert w1.platform is not w2.platform
    assert w1.meter.faas is w1.platform.billing
