"""Tests for the cold-start model and miscellaneous message paths."""

import numpy as np
import pytest

from repro.core import messages
from repro.faas import ColdStartModel
from repro.sim import RandomStreams


# -------------------------------------------------------------- cold start
def test_cold_latency_exceeds_warm():
    model = ColdStartModel()
    rng = np.random.default_rng(0)
    warm = np.mean([model.warm_latency(rng) for _ in range(300)])
    cold = np.mean([model.cold_latency(rng) for _ in range(300)])
    assert cold > warm * 5


def test_dispatch_latency_selects_path():
    model = ColdStartModel()
    warm_samples = [
        model.dispatch_latency(True, np.random.default_rng(i)) for i in range(50)
    ]
    cold_samples = [
        model.dispatch_latency(False, np.random.default_rng(i)) for i in range(50)
    ]
    assert np.median(cold_samples) > np.median(warm_samples)


def test_warm_latency_near_configured_median():
    model = ColdStartModel(warm_median=0.02, warm_sigma=0.1)
    rng = np.random.default_rng(1)
    samples = [model.warm_latency(rng) for _ in range(500)]
    assert abs(np.median(samples) - 0.02) < 0.005


def test_cold_median_scales():
    fast = ColdStartModel(cold_median=0.1)
    slow = ColdStartModel(cold_median=2.0)
    rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
    fast_s = np.median([fast.cold_latency(rng1) for _ in range(200)])
    slow_s = np.median([slow.cold_latency(rng2) for _ in range(200)])
    assert slow_s > fast_s * 5


# ------------------------------------------------------------ ssp messages
def test_update_available_schema():
    msg = messages.update_available(2, 9, True)
    assert messages.validate(msg) == messages.UPDATE_AVAILABLE
    assert msg["worker"] == 2 and msg["step"] == 9 and msg["has_update"]


def test_control_schema():
    msg = messages.control("stop")
    assert messages.validate(msg) == messages.CONTROL
    with pytest.raises(ValueError):
        messages.control("dance")


def test_streams_repr_and_registry():
    streams = RandomStreams(seed=5)
    streams.stream("a")
    assert "a" in repr(streams)
