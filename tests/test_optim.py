"""Unit tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.ml import ModelUpdate, ParameterSet
from repro.ml.optim import (
    SGD,
    Adam,
    AdaGrad,
    ConstantLR,
    InverseSqrtLR,
    MomentumSGD,
    StepDecayLR,
)
from repro.ml.sparse import SparseDelta


def dense_grad(values):
    values = np.asarray(values, dtype=np.float64)
    return ModelUpdate({"w": SparseDelta.from_dense(values)})


def params(values):
    return ParameterSet({"w": np.asarray(values, dtype=np.float64)})


# --------------------------------------------------------------- schedules
def test_constant_lr():
    assert ConstantLR(0.1).rate(1) == 0.1
    assert ConstantLR(0.1).rate(1000) == 0.1


def test_inverse_sqrt_lr():
    s = InverseSqrtLR(2.0)
    assert s.rate(1) == 2.0
    assert s.rate(4) == 1.0
    assert s.rate(100) == pytest.approx(0.2)


def test_step_decay_lr():
    s = StepDecayLR(1.0, gamma=0.5, period=10)
    assert s.rate(1) == 1.0
    assert s.rate(10) == 1.0
    assert s.rate(11) == 0.5
    assert s.rate(21) == 0.25


def test_schedules_reject_step_zero():
    for s in [ConstantLR(0.1), InverseSqrtLR(1.0), StepDecayLR(1.0)]:
        with pytest.raises(ValueError):
            s.rate(0)


# --------------------------------------------------------------------- SGD
def test_sgd_step_is_negative_lr_grad():
    opt = SGD(lr=0.1)
    p = params([1.0, 1.0])
    update = opt.step(p, dense_grad([2.0, -4.0]), t=1)
    np.testing.assert_allclose(update["w"].to_dense(), [-0.2, 0.4])


def test_sgd_with_schedule():
    opt = SGD(lr=InverseSqrtLR(1.0))
    p = params([0.0])
    u1 = opt.step(p, dense_grad([1.0]), t=1)
    u4 = opt.step(p, dense_grad([1.0]), t=4)
    assert u1["w"].values[0] == pytest.approx(-1.0)
    assert u4["w"].values[0] == pytest.approx(-0.5)


def test_optimizer_rejects_step_zero():
    with pytest.raises(ValueError):
        SGD(lr=0.1).step(params([0.0]), dense_grad([1.0]), t=0)


def test_optimizer_rejects_unknown_tensor():
    update = ModelUpdate({"zz": SparseDelta.from_dense(np.ones(1))})
    with pytest.raises(KeyError):
        SGD(lr=0.1).step(params([0.0]), update, t=1)


# ---------------------------------------------------------------- momentum
def test_heavy_ball_momentum_matches_reference():
    opt = MomentumSGD(lr=0.1, momentum=0.9, nesterov=False)
    p = params([0.0])
    v = 0.0
    for t in range(1, 5):
        g = float(t)
        v = 0.9 * v + g
        expected = -0.1 * v
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(expected)


def test_nesterov_momentum_matches_reference():
    opt = MomentumSGD(lr=0.1, momentum=0.9, nesterov=True)
    p = params([0.0])
    v = 0.0
    for t in range(1, 5):
        g = 1.0
        v = 0.9 * v + g
        expected = -0.1 * (g + 0.9 * v)
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(expected)


def test_momentum_lazy_state_only_touched_indices():
    opt = MomentumSGD(lr=0.1, momentum=0.9)
    p = params([0.0, 0.0])
    grad = ModelUpdate({"w": SparseDelta(np.array([0]), np.array([1.0]), (2,))})
    opt.step(p, grad, t=1)
    velocity = opt._state["velocity"]["w"]
    assert velocity[0] == 1.0 and velocity[1] == 0.0


def test_momentum_validates():
    with pytest.raises(ValueError):
        MomentumSGD(lr=0.1, momentum=1.0)


# -------------------------------------------------------------------- Adam
def test_adam_matches_reference_implementation():
    opt = Adam(lr=0.01, beta1=0.9, beta2=0.999, eps=1e-8)
    p = params([0.0])
    m = v = 0.0
    for t in range(1, 6):
        g = np.sin(t)
        m = 0.9 * m + 0.1 * g
        v = 0.999 * v + 0.001 * g * g
        m_hat = m / (1 - 0.9**t)
        v_hat = v / (1 - 0.999**t)
        expected = -0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(expected)


def test_adam_first_step_is_minus_lr_sign():
    opt = Adam(lr=0.01)
    update = opt.step(params([0.0]), dense_grad([123.0]), t=1)
    # Bias-corrected first step has magnitude ~lr regardless of grad scale.
    assert update["w"].values[0] == pytest.approx(-0.01, rel=1e-4)


def test_adam_validates_hyperparams():
    with pytest.raises(ValueError):
        Adam(lr=0.1, beta1=1.0)
    with pytest.raises(ValueError):
        Adam(lr=0.1, beta2=-0.1)
    with pytest.raises(ValueError):
        Adam(lr=0.1, eps=0)


# ----------------------------------------------------------------- AdaGrad
def test_adagrad_matches_reference():
    opt = AdaGrad(lr=0.5, eps=1e-10)
    p = params([0.0])
    acc = 0.0
    for t in range(1, 4):
        g = 2.0
        acc += g * g
        expected = -0.5 * g / (np.sqrt(acc) + 1e-10)
        update = opt.step(p, dense_grad([g]), t=t)
        assert update["w"].values[0] == pytest.approx(expected)


def test_adagrad_validates():
    with pytest.raises(ValueError):
        AdaGrad(lr=0.1, eps=0)


# ------------------------------------------------------------------- reset
def test_reset_clears_state():
    opt = MomentumSGD(lr=0.1, momentum=0.9)
    p = params([0.0])
    opt.step(p, dense_grad([1.0]), t=1)
    assert opt._state
    opt.reset()
    assert not opt._state
    # After reset, the first step behaves like a fresh optimizer.
    u = opt.step(p, dense_grad([1.0]), t=1)
    assert u["w"].values[0] == pytest.approx(-0.1)


def test_multiple_tensors_independent_state():
    opt = MomentumSGD(lr=0.1, momentum=0.9)
    p = ParameterSet({"a": np.zeros(1), "b": np.zeros(1)})
    grad = ModelUpdate(
        {
            "a": SparseDelta.from_dense(np.array([1.0])),
            "b": SparseDelta.from_dense(np.array([2.0])),
        }
    )
    u = opt.step(p, grad, t=1)
    assert u["a"].values[0] == pytest.approx(-0.1)
    assert u["b"].values[0] == pytest.approx(-0.2)
