"""End-to-end fault-tolerant training: crash recovery, determinism, no-op.

These runs use a small PMF workload and aggressive fault profiles with
tight crash windows (the preset windows assume longer activations), so
every recovery path is exercised within a few simulated minutes.
"""

import pytest

from repro import JobConfig, run_mlless
from repro.faults import FaultProfile
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD

SPEC = MovieLensSpec(
    n_users=120, n_movies=100, n_ratings=8_000, rank=4, batch_size=500
)


def make_config(faults=None, seed=11, target_loss=0.74, **kwargs):
    dataset = movielens_like(SPEC, seed=2)
    defaults = dict(
        model=PMF(SPEC.n_users, SPEC.n_movies, rank=6, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(
            lr=InverseSqrtLR(8.0), momentum=0.9, nesterov=True
        ),
        dataset=dataset,
        n_workers=4,
        significance_v=0.7,
        target_loss=target_loss,
        max_steps=120,
        seed=seed,
        faults=faults,
    )
    defaults.update(kwargs)
    return JobConfig(**defaults)


CRASHY = FaultProfile(
    name="crashy-test",
    crash_rate=0.5,
    crash_window_s=(0.2, 2.0),
)


def fingerprint(result):
    """Everything that must be identical across same-seed runs."""
    times, losses = result.losses()
    return (
        result.converged,
        result.total_steps,
        tuple(times),
        tuple(losses),
        result.total_cost,
        tuple(sorted(result.extras.items())),
    )


# ------------------------------------------------------------ strict no-op
def test_disabled_injector_is_a_strict_noop():
    plain = run_mlless(make_config(faults=None))
    noop = run_mlless(make_config(faults=FaultProfile(name="noop")))
    assert fingerprint(plain) == fingerprint(noop)
    assert "faults_injected" not in plain.extras


# -------------------------------------------------------- crash + recovery
def test_crash_recovery_converges_with_nonzero_counts():
    result = run_mlless(make_config(faults=CRASHY, barrier_timeout_s=5.0))
    assert result.converged
    assert result.extras["faults_injected"] > 0
    assert result.extras["faults_recovered"] > 0
    assert result.extras["fault.activation_crash"] > 0
    assert result.extras["recovery.invoke_retry"] > 0
    assert result.extras["recovery.worker_resumed"] > 0


def test_crash_recovery_is_deterministic():
    config_a = make_config(faults=CRASHY, barrier_timeout_s=5.0)
    config_b = make_config(faults=CRASHY, barrier_timeout_s=5.0)
    assert fingerprint(run_mlless(config_a)) == fingerprint(run_mlless(config_b))


def test_different_seed_different_fault_schedule():
    a = run_mlless(make_config(faults=CRASHY, seed=11, barrier_timeout_s=5.0))
    b = run_mlless(make_config(faults=CRASHY, seed=12, barrier_timeout_s=5.0))
    assert fingerprint(a) != fingerprint(b)


# ------------------------------------------------------------ lossy queues
def test_lossy_queue_recovery():
    lossy = FaultProfile(
        name="lossy-test", message_loss_rate=0.05,
        message_duplication_rate=0.05,
    )
    result = run_mlless(
        make_config(faults=lossy, barrier_timeout_s=3.0)
    )
    assert result.converged
    assert result.extras["fault.message_loss"] > 0
    # Lost reports/releases were recovered via resync round-trips.
    assert result.extras["recovery.resync"] > 0


# ------------------------------------------------------------ stragglers
def test_straggler_profile_converges_and_costs_more():
    slow = FaultProfile(
        name="straggler-test", straggler_rate=0.4,
        straggler_factor=(2.0, 3.0),
    )
    clean = run_mlless(make_config(faults=None))
    result = run_mlless(make_config(faults=slow, barrier_timeout_s=30.0))
    assert result.converged
    assert result.extras["fault.straggler"] > 0
    # Stragglers burn more GB-seconds to reach the same target.
    assert result.total_cost > clean.total_cost


# ------------------------------------------------------------- abandonment
@pytest.mark.slow
def test_hopeless_workers_are_abandoned_not_hung():
    # Every worker activation crashes almost immediately and retries are
    # scarce: the job must terminate (abandoned), not hang at a barrier.
    hopeless = FaultProfile(
        name="hopeless-test", crash_rate=1.0, crash_window_s=(0.05, 0.2),
    )
    result = run_mlless(
        make_config(
            faults=hopeless,
            barrier_timeout_s=2.0,
            max_invoke_retries=1,
            max_resyncs_per_step=2,
            max_steps=30,
        )
    )
    assert not result.converged
    assert result.extras["recovery.worker_abandoned"] > 0
