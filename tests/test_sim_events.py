"""Unit tests for composite events (AllOf/AnyOf)."""

import pytest

from repro.sim import AllOf, Environment


def test_allof_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, sorted(result.values()))

    p = env.process(proc())
    env.run()
    assert p.value == (5, ["a", "b"])


def test_anyof_fires_on_first_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc())
    env.run()
    assert p.value == (1, ["fast"])


def test_allof_empty_list_succeeds_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return result

    p = env.process(proc())
    env.run()
    assert p.value == {}


def test_condition_value_maps_events_to_values():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value=10)
        t2 = env.timeout(2, value=20)
        result = yield env.all_of([t1, t2])
        return (result[t1], result[t2])

    p = env.process(proc())
    env.run()
    assert p.value == (10, 20)


def test_and_operator_builds_allof():
    env = Environment()

    def proc():
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        yield t1 & t2
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 2


def test_or_operator_builds_anyof():
    env = Environment()

    def proc():
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        yield t1 | t2
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 1


def test_allof_propagates_failure():
    env = Environment()
    evt = env.event()

    def failer():
        yield env.timeout(1)
        raise ValueError("inner")

    def proc():
        try:
            yield env.all_of([env.process(failer()), env.timeout(10)])
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(proc())
    env.run(until=p)
    assert p.value == "caught inner"


def test_anyof_with_already_processed_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="early")
        yield t1  # process it fully
        result = yield env.any_of([t1, env.timeout(50)])
        return (env.now, result[t1])

    p = env.process(proc())
    env.run(until=p)
    assert p.value == (1, "early")


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])


def test_nested_conditions():
    env = Environment()

    def proc():
        a = env.timeout(1)
        b = env.timeout(2)
        c = env.timeout(10)
        yield (a & b) | c
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 2


def test_anyof_does_not_cancel_losers():
    env = Environment()
    fired = []

    def watcher(tag, delay):
        yield env.timeout(delay)
        fired.append(tag)

    def proc():
        w1 = env.process(watcher("fast", 1))
        w2 = env.process(watcher("slow", 4))
        yield w1 | w2

    env.process(proc())
    env.run()
    assert fired == ["fast", "slow"]
