"""Unit tests for EWMA, learning-curve fitting, and knee detection."""

import numpy as np
import pytest

from repro.core import (
    CurveFitError,
    EWMAFilter,
    KneedleDetector,
    ReferenceCurve,
    SlopeKneeDetector,
    SlowCurve,
    ewma,
)
from repro.core.curves import prediction_error


# -------------------------------------------------------------------- EWMA
def test_ewma_filter_first_value_passthrough():
    f = EWMAFilter(alpha=0.3)
    assert f.value is None
    assert f.update(10.0) == 10.0


def test_ewma_filter_recurrence():
    f = EWMAFilter(alpha=0.5)
    f.update(0.0)
    assert f.update(10.0) == 5.0
    assert f.update(10.0) == 7.5


def test_ewma_filter_reset():
    f = EWMAFilter(alpha=0.5)
    f.update(10.0)
    f.reset()
    assert f.value is None
    assert f.update(4.0) == 4.0


def test_ewma_alpha_validated():
    with pytest.raises(ValueError):
        EWMAFilter(alpha=0.0)
    with pytest.raises(ValueError):
        EWMAFilter(alpha=1.5)


def test_ewma_batch_matches_online():
    values = [3.0, 1.0, 4.0, 1.0, 5.0]
    batch = ewma(values, alpha=0.4)
    f = EWMAFilter(alpha=0.4)
    online = [f.update(v) for v in values]
    np.testing.assert_allclose(batch, online)


def test_ewma_smooths_outliers():
    values = [1.0] * 10 + [100.0] + [1.0] * 10
    smooth = ewma(values, alpha=0.2)
    assert smooth.max() < 25.0


# --------------------------------------------------------- reference curve
def synthetic_reference(theta, steps):
    a, b, c, d = theta
    return 1.0 / (a * steps**b + c) + d


def test_reference_curve_recovers_synthetic_parameters():
    steps = np.arange(1, 200, dtype=np.float64)
    theta_true = (0.05, 1.2, 0.6, 0.5)
    y = synthetic_reference(theta_true, steps)
    curve = ReferenceCurve.fit(steps, y)
    np.testing.assert_allclose(curve.predict(steps), y, rtol=1e-3)


def test_reference_curve_prediction_beyond_fit_range():
    steps = np.arange(1, 100, dtype=np.float64)
    theta_true = (0.1, 1.0, 1.0, 0.4)
    y = synthetic_reference(theta_true, steps)
    curve = ReferenceCurve.fit(steps, y)
    future = synthetic_reference(theta_true, np.array([150.0, 200.0]))
    np.testing.assert_allclose(curve.predict([150.0, 200.0]), future, rtol=0.02)


def test_reference_curve_coefficients_non_negative():
    steps = np.arange(1, 80, dtype=np.float64)
    rng = np.random.default_rng(0)
    y = synthetic_reference((0.05, 1.0, 0.8, 0.5), steps) + rng.normal(
        0, 0.002, len(steps)
    )
    curve = ReferenceCurve.fit(steps, y)
    assert all(t >= 0 for t in curve.theta)


def test_reference_curve_needs_enough_points():
    with pytest.raises(CurveFitError):
        ReferenceCurve.fit(np.array([1.0, 2, 3]), np.array([1.0, 0.9, 0.8]))


def test_reference_curve_rejects_nonpositive_steps():
    with pytest.raises(ValueError):
        ReferenceCurve.fit(np.arange(0, 10, dtype=float), np.ones(10))


# --------------------------------------------------------------- slow curve
def synthetic_slow(theta, steps):
    a, b, c, d = theta
    return 1.0 / (a * steps**2 + b * steps + c) + d


def test_slow_curve_recovers_synthetic():
    steps = np.arange(1, 120, dtype=np.float64)
    theta_true = (1e-5, 2e-3, 1.2, 0.45)
    y = synthetic_slow(theta_true, steps)
    curve = SlowCurve.fit(steps, y)
    np.testing.assert_allclose(curve.predict(steps), y, rtol=1e-3)


def test_slow_curve_origin_shift():
    steps = np.arange(101, 220, dtype=np.float64)
    theta_true = (1e-5, 2e-3, 1.2, 0.45)
    y = synthetic_slow(theta_true, steps - 100)
    curve = SlowCurve.fit(steps, y, origin=100)
    assert curve.origin == 100
    np.testing.assert_allclose(curve.predict(steps), y, rtol=1e-3)


def test_slow_curve_rejects_points_before_origin():
    with pytest.raises(ValueError):
        SlowCurve.fit(np.arange(1, 20, dtype=float), np.ones(19), origin=50)


def test_prediction_error_metric():
    err = prediction_error(np.array([2.0, 4.0]), np.array([1.0, 5.0]))
    np.testing.assert_allclose(err, [0.5, 0.25])


# ----------------------------------------------------------- knee detection
def make_learning_curve(knee_at=40, n=150, floor=0.4):
    steps = np.arange(n, dtype=np.float64)
    fast = np.exp(-steps / (knee_at / 3.0))
    return floor + fast


def test_slope_knee_found_near_true_knee():
    losses = make_learning_curve(knee_at=40)
    knee = SlopeKneeDetector(min_steps=10).detect(list(losses))
    assert knee is not None
    assert 15 <= knee <= 80


def test_slope_knee_none_on_short_history():
    losses = make_learning_curve()[:5]
    assert SlopeKneeDetector().detect(list(losses)) is None


def test_slope_knee_none_while_still_descending():
    steps = np.arange(30, dtype=np.float64)
    losses = 1.0 - 0.02 * steps  # constant steep slope, no knee
    assert SlopeKneeDetector(slope_threshold=0.2).detect(list(losses)) is None


def test_slope_knee_flat_curve_none():
    assert SlopeKneeDetector().detect([1.0] * 50) is None


def test_slope_knee_patience_validated():
    with pytest.raises(ValueError):
        SlopeKneeDetector(patience=0).detect([1.0] * 20)


def test_kneedle_finds_knee():
    losses = make_learning_curve(knee_at=40)
    knee = KneedleDetector().detect(list(losses))
    assert knee is not None
    assert 10 <= knee <= 80


def test_kneedle_none_on_flat_or_short():
    assert KneedleDetector().detect([1.0] * 50) is None
    assert KneedleDetector().detect([1.0, 0.5]) is None


def test_kneedle_none_on_linear_curve():
    steps = np.arange(100, dtype=np.float64)
    losses = 1.0 - 0.005 * steps
    knee = KneedleDetector(sensitivity=1.0).detect(list(losses))
    assert knee is None
