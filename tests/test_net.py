"""Unit tests for latency models and bandwidth links."""

import numpy as np
import pytest

from repro.net import (
    ConstantLatency,
    Link,
    LognormalLatency,
    Nic,
    UniformLatency,
    transfer_time,
)
from repro.sim import Environment


# ------------------------------------------------------------ latency models
def test_constant_latency():
    model = ConstantLatency(0.05)
    rng = np.random.default_rng(0)
    assert model.sample(rng) == 0.05
    assert model.mean() == 0.05


def test_constant_latency_negative_rejected():
    with pytest.raises(ValueError):
        ConstantLatency(-0.1)


def test_uniform_latency_in_range():
    model = UniformLatency(0.01, 0.02)
    rng = np.random.default_rng(0)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.01 <= s <= 0.02 for s in samples)
    assert model.mean() == pytest.approx(0.015)


def test_uniform_latency_validates_bounds():
    with pytest.raises(ValueError):
        UniformLatency(0.02, 0.01)


def test_lognormal_latency_median_and_cap():
    model = LognormalLatency(median=0.1, sigma=0.5, cap=0.3)
    rng = np.random.default_rng(1)
    samples = np.array([model.sample(rng) for _ in range(2000)])
    assert abs(np.median(samples) - 0.1) < 0.02
    assert samples.max() <= 0.3
    assert model.mean() > 0.1  # lognormal mean exceeds median


def test_lognormal_latency_validates():
    with pytest.raises(ValueError):
        LognormalLatency(median=0)
    with pytest.raises(ValueError):
        LognormalLatency(median=0.1, sigma=-1)


# -------------------------------------------------------------- transfer time
def test_transfer_time_basic():
    # 1 MB over 8 Mbps = 1 second
    assert transfer_time(1_000_000, 8_000_000) == pytest.approx(1.0)


def test_transfer_time_validates():
    with pytest.raises(ValueError):
        transfer_time(-1, 1e9)
    with pytest.raises(ValueError):
        transfer_time(1, 0)


# --------------------------------------------------------------------- Link
def test_link_uncontended_transfer():
    env = Environment()
    link = Link(env, capacity_bps=8e6)

    def proc():
        yield from link.transfer(1_000_000)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == pytest.approx(1.0)
    assert link.bytes_moved == 1_000_000
    assert link.transfers == 1


def test_link_contention_slows_transfers():
    env = Environment()
    link = Link(env, capacity_bps=8e6)
    done = []

    def proc(tag):
        yield from link.transfer(1_000_000)
        done.append((tag, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Durations are fixed at start from the instantaneous active count:
    # "a" starts alone (1 s); "b" starts with "a" active (2 s).
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_link_active_count_recovers_after_transfer():
    env = Environment()
    link = Link(env, capacity_bps=1e9)

    def proc():
        yield from link.transfer(1000)

    env.process(proc())
    env.run()
    assert link.active_transfers == 0


def test_link_zero_bytes_is_instant():
    env = Environment()
    link = Link(env, capacity_bps=1e9)

    def proc():
        yield from link.transfer(0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0


def test_link_validates():
    with pytest.raises(ValueError):
        Link(Environment(), capacity_bps=0)


def test_nic_send_recv_independent_directions():
    env = Environment()
    nic = Nic(env, capacity_bps=8e6, host="w0")
    times = {}

    def sender():
        yield from nic.send(1_000_000)
        times["tx"] = env.now

    def receiver():
        yield from nic.recv(1_000_000)
        times["rx"] = env.now

    env.process(sender())
    env.process(receiver())
    env.run()
    # Full duplex: both finish at 1 s, not 2 s.
    assert times["tx"] == pytest.approx(1.0)
    assert times["rx"] == pytest.approx(1.0)
