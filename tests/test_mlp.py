"""LayeredMLP unit tests: stage partitioning, stage math, micro-batching.

The model's contract with the pipeline (repro.core.pipeline) is that
chaining the stage primitives over any contiguous partition reproduces
the data-parallel ``gradient()`` exactly — same float ops in the same
order, so the comparison is bit-level, not approximate.
"""

import numpy as np
import pytest

from repro.ml.data import DenseBatch, MLPSpec, mlp_synth
from repro.ml.models import LayeredMLP


def small_model():
    # 4 weight layers: partitionable into 1..4 stages
    return LayeredMLP([6, 8, 5, 3, 1])


def small_batch(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return DenseBatch(rng.standard_normal((n, 6)), rng.standard_normal((n, 1)))


# -- construction and partitioning -------------------------------------------


def test_constructor_rejects_bad_sizes():
    with pytest.raises(ValueError):
        LayeredMLP([4])
    with pytest.raises(ValueError):
        LayeredMLP([4, 0, 1])


def test_stage_layers_contiguous_near_even():
    model = small_model()
    assert model.n_layers == 4
    assert model.stage_layers(1) == [[0, 1, 2, 3]]
    assert model.stage_layers(2) == [[0, 1], [2, 3]]
    assert model.stage_layers(3) == [[0, 1], [2], [3]]
    assert model.stage_layers(4) == [[0], [1], [2], [3]]


def test_stage_layers_rejects_bad_depth():
    model = small_model()
    with pytest.raises(ValueError):
        model.stage_layers(0)
    with pytest.raises(ValueError):
        model.stage_layers(5)  # more stages than weight layers


def test_stage_param_names_cover_all_params_exactly_once():
    model = small_model()
    stages = model.stage_layers(3)
    names = [n for layers in stages for n in model.stage_param_names(layers)]
    assert sorted(names) == sorted(
        f"{kind}{i}" for i in range(model.n_layers) for kind in ("W", "b")
    )
    assert len(names) == len(set(names))


def test_init_params_shapes_and_zero_biases():
    model = small_model()
    params = model.init_params(np.random.default_rng(1))
    for i, (fan_in, fan_out) in enumerate(zip([6, 8, 5, 3], [8, 5, 3, 1])):
        assert params[f"W{i}"].shape == (fan_in, fan_out)
        np.testing.assert_array_equal(params[f"b{i}"], np.zeros(fan_out))


# -- stage math == data-parallel math ----------------------------------------


@pytest.mark.parametrize("n_stages", [1, 2, 3, 4])
def test_gradient_equals_stage_composition(n_stages):
    model = small_model()
    params = model.init_params(np.random.default_rng(2))
    batch = small_batch()
    dp_loss, dp_update = model.gradient(params, batch)

    stages = model.stage_layers(n_stages)
    # forward through the stages in order, caching per stage
    act, caches = batch.x, []
    for layers in stages:
        act, cache = model.stage_forward(params, act, layers)
        caches.append(cache)
    loss, grad = model.output_grad(act, batch.y)
    # backward through the stages in reverse, collecting per-stage grads
    deltas = {}
    for layers, cache in zip(reversed(stages), reversed(caches)):
        grad, update = model.stage_backward(params, cache, grad, layers)
        deltas.update(dict(update))

    assert loss == dp_loss
    assert sorted(deltas) == dp_update.names
    for name, delta in deltas.items():
        np.testing.assert_array_equal(delta.indices, dp_update[name].indices)
        np.testing.assert_array_equal(delta.values, dp_update[name].values)


def test_output_grad_loss_matches_loss_method():
    model = small_model()
    params = model.init_params(np.random.default_rng(3))
    batch = small_batch(seed=4)
    out, _ = model.stage_forward(params, batch.x, list(range(model.n_layers)))
    loss, _ = model.output_grad(out, batch.y)
    assert loss == model.loss(params, batch)


def test_stage_backward_rejects_mismatched_cache():
    model = small_model()
    params = model.init_params(np.random.default_rng(5))
    batch = small_batch()
    _, cache = model.stage_forward(params, batch.x, [0, 1])
    with pytest.raises(ValueError, match="cache does not match"):
        model.stage_backward(params, cache, np.zeros((batch.n, 3)), [2, 3])


def test_flops_scale_with_rows_and_layers():
    model = small_model()
    assert model.stage_fwd_flops(10, [0]) == 2 * 10 * 6 * 8
    assert model.stage_bwd_flops(10, [0]) == 2 * model.stage_fwd_flops(10, [0])
    all_layers = list(range(model.n_layers))
    total = model.stage_fwd_flops(7, all_layers) + model.stage_bwd_flops(7, all_layers)
    assert model.sparse_step_flops(small_batch(n=7)) == total


# -- micro-batch splitting ---------------------------------------------------


def test_micro_split_partitions_rows_in_order():
    batch = small_batch(n=10)
    parts = batch.micro_split(3)
    assert [p.n for p in parts] == [4, 3, 3]
    np.testing.assert_array_equal(np.vstack([p.x for p in parts]), batch.x)
    np.testing.assert_array_equal(np.vstack([p.y for p in parts]), batch.y)


def test_micro_split_bounds():
    batch = small_batch(n=4)
    assert len(batch.micro_split(1)) == 1
    assert len(batch.micro_split(4)) == 4
    with pytest.raises(ValueError):
        batch.micro_split(0)
    with pytest.raises(ValueError):
        batch.micro_split(5)


# -- synthetic dataset -------------------------------------------------------


def test_mlp_synth_is_deterministic_and_shaped():
    spec = MLPSpec(n_samples=1_000, n_features=8, hidden=(6,), batch_size=250)
    a = mlp_synth(spec, seed=9)
    b = mlp_synth(spec, seed=9)
    assert len(a) == 4
    assert a.name == "mlp-synth-1000"
    for ba, bb in zip(a, b):
        assert ba.x.shape == (250, 8) and ba.y.shape == (250, 1)
        np.testing.assert_array_equal(ba.x, bb.x)
        np.testing.assert_array_equal(ba.y, bb.y)
