"""Unit tests for losses, parameter containers and model updates."""

import numpy as np
import pytest

from repro.ml import (
    ModelUpdate,
    ParameterSet,
    bce_loss,
    mse_loss,
    rmse,
    sigmoid,
)
from repro.ml.loss import bce_grad_residual
from repro.ml.sparse import SparseDelta


# -------------------------------------------------------------------- loss
def test_sigmoid_matches_definition():
    z = np.array([-2.0, 0.0, 3.0])
    np.testing.assert_allclose(sigmoid(z), 1 / (1 + np.exp(-z)))


def test_sigmoid_numerically_stable_at_extremes():
    out = sigmoid(np.array([-1000.0, 1000.0]))
    assert out[0] == 0.0 and out[1] == 1.0
    assert not np.any(np.isnan(out))


def test_bce_loss_perfect_predictions_near_zero():
    probs = np.array([0.9999999, 0.0000001])
    labels = np.array([1.0, 0.0])
    assert bce_loss(probs, labels) < 1e-5


def test_bce_loss_uniform_predictions():
    probs = np.full(4, 0.5)
    labels = np.array([0.0, 1.0, 0.0, 1.0])
    assert bce_loss(probs, labels) == pytest.approx(np.log(2))


def test_bce_loss_clips_extremes():
    assert np.isfinite(bce_loss(np.array([0.0]), np.array([1.0])))


def test_bce_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        bce_loss(np.zeros(3), np.zeros(4))


def test_bce_grad_residual():
    probs = np.array([0.7, 0.2])
    labels = np.array([1.0, 0.0])
    np.testing.assert_allclose(bce_grad_residual(probs, labels), [-0.3, 0.2])


def test_mse_and_rmse():
    preds = np.array([1.0, 2.0])
    targets = np.array([0.0, 0.0])
    assert mse_loss(preds, targets) == pytest.approx(2.5)
    assert rmse(preds, targets) == pytest.approx(np.sqrt(2.5))


def test_mse_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        mse_loss(np.zeros(2), np.zeros(3))


# ------------------------------------------------------------ ParameterSet
def make_params():
    return ParameterSet({"w": np.arange(4.0), "b": np.zeros(1)})


def test_parameterset_access_and_names():
    p = make_params()
    assert p.names == ["b", "w"]
    np.testing.assert_allclose(p["w"], [0, 1, 2, 3])
    assert "w" in p and "z" not in p


def test_parameterset_requires_tensors():
    with pytest.raises(ValueError):
        ParameterSet({})


def test_parameterset_counts_and_bytes():
    p = make_params()
    assert p.n_parameters == 5
    assert p.nbytes == 5 * 8


def test_parameterset_copy_is_deep():
    p = make_params()
    q = p.copy()
    q["w"][0] = 99
    assert p["w"][0] == 0


def test_parameterset_apply_update():
    p = make_params()
    update = ModelUpdate({"w": SparseDelta(np.array([1]), np.array([10.0]), (4,))})
    p.apply(update)
    np.testing.assert_allclose(p["w"], [0, 11, 2, 3])


def test_parameterset_apply_unknown_tensor_rejected():
    p = make_params()
    update = ModelUpdate({"zz": SparseDelta.empty((4,))})
    with pytest.raises(KeyError):
        p.apply(update)


def test_parameterset_average_with():
    p = ParameterSet({"w": np.array([2.0, 4.0])})
    q = ParameterSet({"w": np.array([4.0, 0.0])})
    p.average_with(q)
    np.testing.assert_allclose(p["w"], [3.0, 2.0])


def test_parameterset_average_shape_mismatch_rejected():
    p = ParameterSet({"w": np.zeros(2)})
    q = ParameterSet({"w": np.zeros(3)})
    with pytest.raises(ValueError):
        p.average_with(q)


def test_parameterset_distance():
    p = ParameterSet({"w": np.array([0.0, 3.0]), "b": np.array([4.0])})
    q = ParameterSet({"w": np.zeros(2), "b": np.zeros(1)})
    assert p.distance_to(q) == pytest.approx(5.0)
    assert p.distance_to(p) == 0.0


# ------------------------------------------------------------- ModelUpdate
def test_model_update_iteration_sorted():
    u = ModelUpdate(
        {"z": SparseDelta.empty((2,)), "a": SparseDelta.empty((2,))}
    )
    assert [name for name, _ in u] == ["a", "z"]
    assert u.names == ["a", "z"]


def test_model_update_nnz_and_bytes():
    u = ModelUpdate({"w": SparseDelta(np.array([0, 1]), np.ones(2), (5,))})
    assert u.nnz == 2
    assert u.nbytes == 24
    assert not u.is_empty()


def test_empty_update_has_minimum_wire_size():
    u = ModelUpdate({"w": SparseDelta.empty((5,))})
    assert u.is_empty()
    assert u.nbytes == 8  # envelope floor


def test_model_update_scale():
    u = ModelUpdate({"w": SparseDelta(np.array([0]), np.array([2.0]), (2,))})
    np.testing.assert_allclose(u.scale(0.5)["w"].values, [1.0])


def test_model_update_merge_union_of_tensors():
    a = ModelUpdate({"w": SparseDelta(np.array([0]), np.array([1.0]), (2,))})
    b = ModelUpdate(
        {
            "w": SparseDelta(np.array([0]), np.array([2.0]), (2,)),
            "b": SparseDelta(np.array([0]), np.array([5.0]), (1,)),
        }
    )
    merged = a.merge(b)
    np.testing.assert_allclose(merged["w"].to_dense(), [3.0, 0.0])
    np.testing.assert_allclose(merged["b"].to_dense(), [5.0])
