"""Unit tests for supervisor internals and the worker checkpoint object."""

import numpy as np

from repro.core.config import JobConfig
from repro.core.runtime import WorkerCheckpoint
from repro.core.significance import SignificanceFilter
from repro.core.supervisor import SupervisorState, _pick_victim, _stop_condition
from repro.ml import ParameterSet
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import SGD


def make_runtime(n_workers=4):
    from repro.experiments.common import build_world, make_runtime as mk

    dataset = movielens_like(
        MovieLensSpec(n_users=30, n_movies=20, n_ratings=1000, batch_size=250),
        seed=0,
    )
    config = JobConfig(
        model=PMF(30, 20, rank=2),
        make_optimizer=lambda: SGD(lr=0.1),
        dataset=dataset,
        n_workers=n_workers,
        max_steps=10,
    )
    world = build_world(seed=0)
    return mk(world, config)


# ------------------------------------------------------------- pick victim
def test_pick_victim_highest_loss():
    state = SupervisorState(make_runtime())
    state.last_loss = {0: 0.5, 1: 0.9, 2: 0.7, 3: 0.6}
    assert _pick_victim(state) == 1


def test_pick_victim_breaks_loss_ties_by_lowest_worker_id():
    # Regression for the SIM003 audit fix: candidates come from the
    # `active` set, and with tied losses the winner used to depend on
    # set-hash iteration order; sorting pins it to the lowest id.
    state = SupervisorState(make_runtime())
    state.last_loss = {0: 0.9, 1: 0.9, 2: 0.9, 3: 0.5}
    assert _pick_victim(state) == 0


def test_pick_victim_only_active_workers():
    state = SupervisorState(make_runtime())
    state.last_loss = {0: 0.5, 1: 0.9, 2: 0.7, 3: 0.6}
    state.active = {0, 2}
    assert _pick_victim(state) == 2


def test_pick_victim_no_candidates():
    state = SupervisorState(make_runtime())
    state.last_loss = {}
    assert _pick_victim(state) is None


# ----------------------------------------------------------- stop condition
def test_stop_on_target():
    runtime = make_runtime()
    config = runtime.config
    state = SupervisorState(runtime)
    state.job_started_at = 0.0
    config.target_loss = 0.5
    stop, reason = _stop_condition(config, state, step=1, mean_loss=0.4, now=1.0)
    assert stop and reason == "target"


def test_stop_on_max_steps():
    runtime = make_runtime()
    state = SupervisorState(runtime)
    state.job_started_at = 0.0
    stop, reason = _stop_condition(
        runtime.config, state, step=10, mean_loss=9.9, now=1.0
    )
    assert stop and reason == "max_steps"


def test_stop_on_max_time():
    runtime = make_runtime()
    runtime.config.max_time_s = 100.0
    state = SupervisorState(runtime)
    state.job_started_at = 0.0
    stop, reason = _stop_condition(
        runtime.config, state, step=1, mean_loss=9.9, now=500.0
    )
    assert stop and reason == "max_time"


def test_no_stop_mid_run():
    runtime = make_runtime()
    state = SupervisorState(runtime)
    state.job_started_at = 0.0
    stop, _reason = _stop_condition(
        runtime.config, state, step=1, mean_loss=9.9, now=1.0
    )
    assert not stop


# ----------------------------------------------------------- state objects
def test_supervisor_state_initial_pool():
    state = SupervisorState(make_runtime(n_workers=4))
    assert state.active == {0, 1, 2, 3}
    assert state.completed_step == 0
    assert state.nbytes > 0


def test_worker_checkpoint_nbytes_scales_with_state():
    params = ParameterSet({"w": np.zeros(100)})
    opt = SGD(lr=0.1)
    filt = SignificanceFilter(0.5, {"w": (100,)})
    ckpt = WorkerCheckpoint(0, 0, params, opt, filt)
    base = ckpt.nbytes
    assert base >= 2 * params.nbytes
    # Momentum state adds a buffer slot.
    from repro.ml.optim import MomentumSGD
    from repro.ml.parameters import ModelUpdate
    from repro.ml.sparse import SparseDelta

    opt2 = MomentumSGD(lr=0.1)
    opt2.step(
        params,
        ModelUpdate({"w": SparseDelta(np.array([0]), np.array([1.0]), (100,))}),
        t=1,
    )
    ckpt2 = WorkerCheckpoint(0, 0, params, opt2, filt)
    assert ckpt2.nbytes > base


# -------------------------------------------------------- runtime naming
def test_runtime_key_naming_conventions():
    runtime = make_runtime()
    assert runtime.worker_queue(3) == "worker-3"
    assert runtime.update_key(7, 2) == "upd/7/2"
    assert runtime.replica_key(7, 2) == "departed/7/2"
    assert runtime.checkpoint_key(1) == "ckpt/worker-1"
    assert runtime.supervisor_checkpoint_key == "ckpt/supervisor"
    assert runtime.supervisor_queue == "supervisor"


def test_runtime_partitions_cover_dataset():
    runtime = make_runtime(n_workers=3)
    flat = sorted(i for part in runtime.partitions for i in part)
    assert flat == list(range(len(runtime.config.dataset)))
