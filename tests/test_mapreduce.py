"""Unit tests for the PyWren-style map-reduce framework."""

import numpy as np

from repro.faas import FaaSPlatform
from repro.mapreduce import PyWrenExecutor, normalize_via_mapreduce
from repro.ml.data import CriteoSpec, criteo_like, normalize_dataset
from repro.sim import Environment, RandomStreams
from repro.storage import ObjectStore


def make_executor():
    env = Environment()
    streams = RandomStreams(seed=0)
    cos = ObjectStore(env, streams)
    platform = FaaSPlatform(env, streams)
    return env, cos, PyWrenExecutor(platform, cos)


def run(env, gen):
    p = env.process(gen)
    env.run()
    assert p.ok, p.value
    return p.value


def test_map_applies_udf_in_order():
    env, _cos, ex = make_executor()
    result = run(env, ex.map(lambda x: x * 10, [1, 2, 3]))
    assert result == [10, 20, 30]


def test_map_empty_items():
    env, _cos, ex = make_executor()
    assert run(env, ex.map(lambda x: x, [])) == []


def test_map_charges_time():
    env, _cos, ex = make_executor()
    run(env, ex.map(lambda x: x, [1, 2]))
    assert env.now > 0


def test_map_flops_hint_slows_tasks():
    env1, _c1, ex1 = make_executor()
    run(env1, ex1.map(lambda x: x, [1]))
    quick = ex1.platform.billing.records[-1].duration

    env2, _c2, ex2 = make_executor()
    run(env2, ex2.map(lambda x: x, [1], flops_hint=1e9))
    slow = ex2.platform.billing.records[-1].duration
    assert slow > quick + 10  # 1e9 flops at 2e7/s = 50 s


def test_map_reduce_chains():
    env, _cos, ex = make_executor()
    total = run(
        env,
        ex.map_reduce(
            map_udf=lambda x: x * x,
            reduce_udf=sum,
            items=[1, 2, 3, 4],
        ),
    )
    assert total == 30


def test_map_reduce_bills_activations():
    env, _cos, ex = make_executor()
    run(env, ex.map_reduce(lambda x: x, sum, [1, 2, 3]))
    records = ex.platform.billing.records
    functions = [r.function for r in records]
    assert functions.count("pywren-map") == 3
    assert functions.count("pywren-reduce") == 1


def test_normalize_via_mapreduce_matches_pure_version():
    spec = CriteoSpec(
        n_samples=800, n_hash_buckets=200, batch_size=200, n_categorical=4
    )
    dataset = criteo_like(spec, seed=0)
    pure, pure_stats = normalize_dataset(dataset, dense_cols=spec.n_numeric)

    env, _cos, ex = make_executor()
    mr, mr_stats = run(
        env, normalize_via_mapreduce(ex, dataset, dense_cols=spec.n_numeric)
    )
    np.testing.assert_allclose(mr_stats.minimum, pure_stats.minimum)
    np.testing.assert_allclose(mr_stats.maximum, pure_stats.maximum)
    for batch_mr, batch_pure in zip(mr, pure):
        np.testing.assert_allclose(batch_mr.X.data, batch_pure.X.data)


def test_executor_scratch_bucket_created():
    _env, cos, _ex = make_executor()
    assert cos.has_bucket("pywren-scratch")
