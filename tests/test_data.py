"""Unit tests for datasets: generators, containers, normalization, hashing."""

import numpy as np
import pytest

from repro.ml.data import (
    CriteoSpec,
    Dataset,
    LRBatch,
    MovieLensSpec,
    PMFBatch,
    combine_stats,
    criteo_like,
    hash_categoricals,
    hash_feature,
    minmax_apply,
    minmax_stats,
    movielens_like,
    normalize_dataset,
)
from repro.ml.sparse import CSRMatrix

SMALL_CRITEO = CriteoSpec(
    n_samples=2000, n_hash_buckets=500, batch_size=250, n_categorical=5
)
SMALL_ML = MovieLensSpec(n_users=50, n_movies=40, n_ratings=2000, batch_size=250)


# ------------------------------------------------------------------ criteo
def test_criteo_like_shapes():
    ds = criteo_like(SMALL_CRITEO, seed=0)
    assert ds.n_samples == 2000
    assert len(ds) == 8
    batch = ds[0]
    assert isinstance(batch, LRBatch)
    assert batch.X.shape == (250, SMALL_CRITEO.n_numeric + 500)


def test_criteo_like_deterministic():
    a = criteo_like(SMALL_CRITEO, seed=5)
    b = criteo_like(SMALL_CRITEO, seed=5)
    np.testing.assert_array_equal(a[0].X.data, b[0].X.data)
    np.testing.assert_array_equal(a[0].y, b[0].y)


def test_criteo_like_seed_changes_data():
    a = criteo_like(SMALL_CRITEO, seed=1)
    b = criteo_like(SMALL_CRITEO, seed=2)
    assert not np.array_equal(a[0].y, b[0].y)


def test_criteo_like_labels_binary_and_rate():
    ds = criteo_like(SMALL_CRITEO, seed=0)
    y = np.concatenate([b.y for b in ds])
    assert set(np.unique(y)) <= {0.0, 1.0}
    assert 0.1 < y.mean() < 0.5  # near the 25% positive rate


def test_criteo_like_sparse():
    ds = criteo_like(SMALL_CRITEO, seed=0)
    assert ds[0].X.density < 0.1


def test_criteo_zipf_concentrates_columns():
    skewed = criteo_like(SMALL_CRITEO, seed=0)
    uniform_spec = CriteoSpec(
        n_samples=2000, n_hash_buckets=500, batch_size=250,
        n_categorical=5, zipf_a=0.01,
    )
    uniform = criteo_like(uniform_spec, seed=0)
    unique_skewed = len(np.unique(skewed[0].X.indices))
    unique_uniform = len(np.unique(uniform[0].X.indices))
    assert unique_skewed < unique_uniform


# --------------------------------------------------------------- movielens
def test_movielens_like_shapes():
    ds = movielens_like(SMALL_ML, seed=0)
    assert ds.n_samples == 2000
    batch = ds[0]
    assert isinstance(batch, PMFBatch)
    assert batch.users.max() < 50
    assert batch.movies.max() < 40


def test_movielens_ratings_in_range_half_star():
    ds = movielens_like(SMALL_ML, seed=0)
    ratings = np.concatenate([b.ratings for b in ds])
    assert ratings.min() >= 0.5 and ratings.max() <= 5.0
    np.testing.assert_allclose(ratings * 2, np.round(ratings * 2))


def test_movielens_deterministic():
    a = movielens_like(SMALL_ML, seed=9)
    b = movielens_like(SMALL_ML, seed=9)
    np.testing.assert_array_equal(a[0].ratings, b[0].ratings)


def test_movielens_popularity_skewed():
    ds = movielens_like(SMALL_ML, seed=0)
    movies = np.concatenate([b.movies for b in ds])
    counts = np.bincount(movies, minlength=40)
    # Zipf: the most popular movie appears far more than the median one.
    assert counts.max() > 5 * max(np.median(counts), 1)


def test_movielens_scaled_specs():
    s10 = MovieLensSpec.ml10m_scaled(scale=0.01)
    s20 = MovieLensSpec.ml20m_scaled(scale=0.01)
    assert s20.n_users > s10.n_users
    assert s20.n_movies > s10.n_movies
    s_override = MovieLensSpec.ml10m_scaled(scale=0.01, rank=3)
    assert s_override.rank == 3


# ----------------------------------------------------------------- dataset
def test_dataset_partition_covers_all_batches_once():
    ds = movielens_like(SMALL_ML, seed=0)
    parts = ds.partition(3)
    flat = sorted(i for part in parts for i in part)
    assert flat == list(range(len(ds)))


def test_dataset_partition_roundrobin_balance():
    ds = movielens_like(SMALL_ML, seed=0)
    parts = ds.partition(3)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_dataset_partition_validates():
    ds = movielens_like(SMALL_ML, seed=0)
    with pytest.raises(ValueError):
        ds.partition(0)


def test_dataset_requires_batches():
    with pytest.raises(ValueError):
        Dataset([])


def test_dataset_stage_into_object_store():
    from repro.sim import Environment, RandomStreams
    from repro.storage import ObjectStore

    env = Environment()
    cos = ObjectStore(env, RandomStreams(0))
    ds = movielens_like(SMALL_ML, seed=0)
    keys = ds.stage(cos, "bucket")
    assert len(keys) == len(ds)
    assert cos.object_count("bucket") == len(ds)
    assert cos.peek("bucket", keys[0]) is ds[0]


def test_batch_validation():
    with pytest.raises(ValueError):
        LRBatch(CSRMatrix.from_dense(np.eye(3)), np.zeros(2))
    with pytest.raises(ValueError):
        PMFBatch(np.zeros(2, np.int32), np.zeros(3, np.int32), np.zeros(2))


def test_batch_nbytes_positive():
    ds1 = criteo_like(SMALL_CRITEO, seed=0)
    ds2 = movielens_like(SMALL_ML, seed=0)
    assert ds1[0].nbytes > 0 and ds2[0].nbytes > 0
    assert ds1.nbytes == sum(b.nbytes for b in ds1)


# ------------------------------------------------------------ normalization
def test_minmax_stats_and_apply():
    # Stats cover explicitly *stored* entries (sparse semantics: zeros are
    # not materialized, hence not observed).
    dense = np.array([[2.0, 10.0, 1.0], [4.0, 20.0, 0.0], [3.0, 5.0, 1.0]])
    X = CSRMatrix.from_dense(dense)
    stats = minmax_stats(X, dense_cols=2)
    np.testing.assert_allclose(stats.minimum, [2.0, 5.0])
    np.testing.assert_allclose(stats.maximum, [4.0, 20.0])
    scaled = minmax_apply(X, stats)
    out = scaled.to_dense()
    assert out[:, 0].min() == 0.0 and out[:, 0].max() == 1.0
    # Column 2 (beyond dense_cols) untouched.
    np.testing.assert_allclose(out[:, 2], dense[:, 2])


def test_minmax_stats_sparse_zeros_not_counted():
    # A column with no stored entries gets [0, 0] stats, range 1.
    X = CSRMatrix.from_dense(np.array([[0.0, 5.0], [0.0, 10.0]]))
    stats = minmax_stats(X, dense_cols=2)
    assert stats.minimum[0] == 0.0 and stats.maximum[0] == 0.0
    assert stats.range_or_one()[0] == 1.0


def test_combine_stats():
    a = minmax_stats(CSRMatrix.from_dense(np.array([[1.0], [5.0]])), 1)
    b = minmax_stats(CSRMatrix.from_dense(np.array([[3.0], [9.0]])), 1)
    combined = combine_stats([a, b])
    assert combined.minimum[0] == 1.0 and combined.maximum[0] == 9.0
    with pytest.raises(ValueError):
        combine_stats([])


def test_normalize_dataset_end_to_end():
    ds = criteo_like(SMALL_CRITEO, seed=0)
    normalized, stats = normalize_dataset(ds, dense_cols=SMALL_CRITEO.n_numeric)
    assert len(normalized) == len(ds)
    for batch in normalized:
        dense_block_mask = batch.X.indices < SMALL_CRITEO.n_numeric
        vals = batch.X.data[dense_block_mask]
        assert vals.min() >= -1e-9 and vals.max() <= 1 + 1e-9


# ------------------------------------------------------------------ hashing
def test_hash_feature_deterministic_and_in_range():
    col1, sign1 = hash_feature(3, "value-x", 1000)
    col2, sign2 = hash_feature(3, "value-x", 1000)
    assert (col1, sign1) == (col2, sign2)
    assert 0 <= col1 < 1000
    assert sign1 in (-1.0, 1.0)


def test_hash_feature_field_sensitivity():
    assert hash_feature(0, "x", 10_000) != hash_feature(1, "x", 10_000)


def test_hash_categoricals_builds_sparse_rows():
    rows = hash_categoricals([["a", "b"], ["a", "a"]], n_buckets=1000)
    assert len(rows) == 2
    idx, val = rows[0]
    assert len(idx) == len(val) <= 2
    assert np.all(np.diff(idx) > 0)  # sorted unique


def test_hash_categoricals_signed_collisions_cancel():
    # Same (field, value) twice in a row sums its signs: |value| == 2.
    rows = hash_categoricals([["z"]], n_buckets=10)
    idx, val = rows[0]
    assert abs(val[0]) == 1.0


def test_hash_feature_validates():
    with pytest.raises(ValueError):
        hash_feature(0, "x", 0)
