"""Unit tests for the scale-in scheduler driven by synthetic loss feeds."""

import numpy as np
import pytest

from repro.core import AutoTunerConfig, ScaleInScheduler


def feed(scheduler, losses, step_duration=1.0, start_time=0.0):
    """Feed a loss trajectory, asking for a decision after each step."""
    decisions = []
    t = start_time
    for i, loss in enumerate(losses, start=1):
        t += step_duration
        scheduler.observe(i, t, loss)
        decision = scheduler.should_evict(t)
        decisions.append(decision)
        if decision.evict:
            scheduler.notify_evicted()
    return decisions


def learning_curve(n=200, knee=40, floor=0.4):
    steps = np.arange(n, dtype=np.float64)
    return floor + np.exp(-steps / (knee / 3.0))


def test_disabled_scheduler_never_evicts():
    config = AutoTunerConfig(enabled=False)
    scheduler = ScaleInScheduler(config, initial_workers=8)
    decisions = feed(scheduler, learning_curve())
    assert not any(d.evict for d in decisions)
    assert all(d.reason == "disabled" for d in decisions)


def test_no_eviction_before_knee():
    config = AutoTunerConfig(enabled=True, epoch_s=5.0, delta_s=2.5)
    scheduler = ScaleInScheduler(config, initial_workers=8)
    # Steep, un-flattened curve: still in fast convergence.
    steps = np.arange(30, dtype=np.float64)
    losses = 2.0 - 0.05 * steps
    decisions = feed(scheduler, losses)
    assert not any(d.evict for d in decisions)


def test_first_eviction_at_knee():
    config = AutoTunerConfig(enabled=True, epoch_s=5.0, delta_s=2.5)
    scheduler = ScaleInScheduler(config, initial_workers=8)
    decisions = feed(scheduler, learning_curve())
    evict_idx = [i for i, d in enumerate(decisions) if d.evict]
    assert evict_idx, "expected at least one eviction"
    first = evict_idx[0]
    assert decisions[first].reason == "knee passed"
    assert 10 <= first <= 100


def test_steady_state_evictions_follow_epochs():
    config = AutoTunerConfig(
        enabled=True, epoch_s=10.0, delta_s=5.0, s_threshold=0.5,
        min_workers=2,
    )
    scheduler = ScaleInScheduler(config, initial_workers=8)
    decisions = feed(scheduler, learning_curve(n=300), step_duration=1.0)
    evict_idx = [i for i, d in enumerate(decisions) if d.evict]
    assert len(evict_idx) >= 2
    # Steady-state evictions are spaced at least one epoch apart.
    gaps = np.diff(evict_idx)
    assert np.all(gaps >= config.epoch_s - 1)


def test_never_below_min_workers():
    config = AutoTunerConfig(
        enabled=True, epoch_s=2.0, delta_s=1.0, s_threshold=1.0, min_workers=3
    )
    scheduler = ScaleInScheduler(config, initial_workers=5)
    feed(scheduler, learning_curve(n=400))
    assert scheduler.current_workers >= 3


def test_high_deviation_blocks_eviction():
    config = AutoTunerConfig(
        enabled=True, epoch_s=5.0, delta_s=2.5, s_threshold=0.0001
    )
    scheduler = ScaleInScheduler(config, initial_workers=8)
    # After the knee, make losses *rise* (the reduced pool diverges):
    # s_delta is large positive -> above threshold -> no more evictions.
    curve = list(learning_curve(n=80))
    curve += list(np.linspace(curve[-1], curve[-1] + 0.5, 120))
    feed(scheduler, curve)
    evictions = 8 - scheduler.current_workers
    assert evictions <= 2  # the knee one (plus at most one borderline)


def test_observe_requires_increasing_steps():
    scheduler = ScaleInScheduler(AutoTunerConfig(enabled=True), 4)
    scheduler.observe(1, 0.0, 1.0)
    with pytest.raises(ValueError):
        scheduler.observe(1, 1.0, 0.9)


def test_ignore_knee_gate_evicts_early():
    config = AutoTunerConfig(
        enabled=True, epoch_s=5.0, delta_s=2.5, ignore_knee_gate=True
    )
    gated = ScaleInScheduler(
        AutoTunerConfig(enabled=True, epoch_s=5.0, delta_s=2.5), 8
    )
    eager = ScaleInScheduler(config, 8)
    losses = learning_curve(n=60)
    d_gated = feed(gated, losses)
    d_eager = feed(eager, losses)

    def first_evict(decisions):
        idx = [i for i, d in enumerate(decisions) if d.evict]
        return idx[0] if idx else len(decisions)

    assert first_evict(d_eager) <= first_evict(d_gated)


def test_decisions_logged():
    scheduler = ScaleInScheduler(AutoTunerConfig(enabled=True), 4)
    feed(scheduler, learning_curve(n=50))
    assert len(scheduler.decisions) == 50


def test_initial_workers_validated():
    with pytest.raises(ValueError):
        ScaleInScheduler(AutoTunerConfig(), 0)


def test_config_validation():
    with pytest.raises(ValueError):
        AutoTunerConfig(epoch_s=0)
    with pytest.raises(ValueError):
        AutoTunerConfig(delta_s=30.0, epoch_s=20.0)
    with pytest.raises(ValueError):
        AutoTunerConfig(min_workers=0)
    with pytest.raises(ValueError):
        AutoTunerConfig(slow_curve_family="cubic")
