"""Unit tests for FaaS invocation queueing at the concurrency cap."""

import pytest

from repro.faas import FaaSLimits, FaaSPlatform, FunctionSpec
from repro.sim import Environment, RandomStreams


def make_platform(cap=2, queue=True):
    env = Environment()
    platform = FaaSPlatform(
        env,
        RandomStreams(seed=0),
        limits=FaaSLimits(max_concurrency=cap),
        queue_when_full=queue,
    )

    def handler(ctx, payload):
        yield from ctx.compute(1.0)
        return ctx.now

    platform.register(FunctionSpec("f", handler))
    return env, platform


def test_queueing_accepts_over_cap():
    env, platform = make_platform(cap=2)
    acts = [platform.invoke("f") for _ in range(5)]
    env.run()
    assert all(a.record.ok for a in acts)


def test_queued_activations_start_later():
    env, platform = make_platform(cap=1)
    first = platform.invoke("f")
    second = platform.invoke("f")
    env.run()
    assert second.started_at >= first.record.end
    assert second.submitted_at == first.submitted_at == 0.0


def test_billing_excludes_queue_wait():
    env, platform = make_platform(cap=1)
    platform.invoke("f")
    queued = platform.invoke("f")
    env.run()
    # Duration ~ 1 s of compute + dispatch, not the ~1 s spent queued.
    assert queued.record.duration < 2.0
    assert queued.record.start == pytest.approx(queued.started_at)


def test_rejecting_platform_still_raises():
    env, platform = make_platform(cap=1, queue=False)
    platform.invoke("f")
    with pytest.raises(RuntimeError, match="concurrency"):
        platform.invoke("f")


def test_queue_drains_fifo():
    env, platform = make_platform(cap=1)
    acts = [platform.invoke("f") for _ in range(4)]
    env.run()
    starts = [a.started_at for a in acts]
    assert starts == sorted(starts)


def test_warm_decision_made_at_dispatch():
    # With cap 1 and sequential dispatch, the second activation reuses the
    # first's warm container even though both were submitted together.
    env, platform = make_platform(cap=1)
    a1 = platform.invoke("f")
    a2 = platform.invoke("f")
    env.run()
    assert a1.cold
    assert not a2.cold
