"""Compiler: specs lower onto the real execution seams and produce
reconciled, digest-stable KPI payloads."""

import json

import pytest

from repro.scenarios import run_scenario_spec, spec_from_dict
from repro.scenarios.compiler import KPI_SCHEMA, _jsonify, _recommend

QUICK_SINGLE_JOB = {
    "scenario": {"name": "quick", "kind": "single-job", "seed": 3},
    "workload": {"name": "pmf-ml10m", "workers": 2, "max_steps": 5},
}

QUICK_PLATFORM = {
    "scenario": {"name": "quick-platform", "kind": "platform", "seed": 1},
    "traffic": {"tenants": 3, "horizon_s": 900.0, "mean_rate_per_h": 6.0},
    "jobs": {"min_steps": 5, "max_steps": 15, "max_workers": 3},
    "pool": {"concurrency": 4, "memory_grades_mb": [1024]},
}


def run_quick(data, **kwargs):
    return run_scenario_spec(spec_from_dict(data), **kwargs)


# -- single-job --------------------------------------------------------------


def test_single_job_payload_shape_and_reconciliation():
    payload = run_quick(QUICK_SINGLE_JOB)
    assert payload["schema"] == KPI_SCHEMA
    assert payload["kind"] == "single-job"
    assert payload["deterministic"] is True
    (run,) = payload["runs"]
    assert run["steps"] == 5
    assert run["total_cost_usd"] > 0
    # the reconciliation block is computed from the *enforced* checks
    rec = run["reconciliation"]
    assert rec["abs_error_usd"] <= 1e-9
    assert rec["meter_total_usd"] == pytest.approx(run["total_cost_usd"])
    assert payload["reconciliation"] == {
        "checked_runs": 1,
        "max_abs_error_usd": rec["abs_error_usd"],
    }
    assert payload["budget"]["ok"] is True
    # cost breakdown components are itemised in the row
    assert "functions" in run["cost_breakdown_usd"]
    # payload is pure JSON (digest hashing would reject anything else)
    json.dumps(payload, allow_nan=False)


def test_single_job_digest_stable_and_seed_sensitive():
    first = run_quick(QUICK_SINGLE_JOB)
    second = run_quick(QUICK_SINGLE_JOB)
    assert first["digest"] == second["digest"]
    reseeded = run_quick(QUICK_SINGLE_JOB, seed=99)
    assert reseeded["seed"] == 99
    assert reseeded["digest"] != first["digest"]


def test_faults_flow_into_kpis():
    data = dict(QUICK_SINGLE_JOB)
    data["scenario"] = {"name": "quick-faulty", "kind": "single-job", "seed": 3}
    data["workload"] = {"name": "pmf-ml10m", "workers": 2, "max_steps": 8}
    data["faults"] = {"straggler_rate": 0.5, "coldstart_spike_rate": 0.5}
    payload = run_quick(data)
    assert payload["kpis"]["faults_injected"] > 0
    (run,) = payload["runs"]
    assert run["faults_injected"] >= run["faults_recovered"]


def test_sweep_produces_rows_and_recommendation():
    data = {
        "scenario": {"name": "quick-sweep", "kind": "single-job", "seed": 3},
        "workload": {"name": "pmf-ml10m", "workers": 2, "max_steps": 5},
        "sweep": {"workers": [2, 3]},
    }
    payload = run_quick(data)
    assert [r["workers"] for r in payload["runs"]] == [2, 3]
    rec = payload["recommendation"]
    assert rec["workers"] in (2, 3)
    assert rec["exec_time_s"] >= rec["fastest_exec_time_s"] * 0  # present
    assert payload["kpis"]["runs"] == 2


def test_budget_violation_is_reported_not_raised():
    data = {
        "scenario": {"name": "quick-broke", "kind": "single-job", "seed": 3},
        "workload": {"name": "pmf-ml10m", "workers": 2, "max_steps": 5},
        "budget": {"max_cost_usd": 0.0},
    }
    payload = run_quick(data)
    assert payload["budget"]["ok"] is False
    assert "exceeds budget" in payload["budget"]["violations"][0]


# -- the recommendation rule in isolation ------------------------------------


def test_recommend_picks_cheapest_within_tolerance():
    runs = [
        {"workers": 8, "isp_threshold": 0.0, "exec_time_s": 10.0,
         "total_cost_usd": 0.80},
        {"workers": 4, "isp_threshold": 0.0, "exec_time_s": 11.0,
         "total_cost_usd": 0.40},
        # cheapest overall but 2x slower than the fastest: ineligible
        {"workers": 2, "isp_threshold": 0.0, "exec_time_s": 20.0,
         "total_cost_usd": 0.25},
    ]
    rec = _recommend(runs, speed_tolerance=1.2)
    assert rec["workers"] == 4
    assert rec["fastest_exec_time_s"] == 10.0
    # widen the tolerance and the slow-but-cheap config wins
    assert _recommend(runs, speed_tolerance=2.0)["workers"] == 2


def test_recommend_tie_break_is_deterministic():
    runs = [
        {"workers": 4, "isp_threshold": 0.5, "exec_time_s": 10.0,
         "total_cost_usd": 0.40},
        {"workers": 2, "isp_threshold": 0.0, "exec_time_s": 10.0,
         "total_cost_usd": 0.40},
    ]
    assert _recommend(runs, 1.2)["workers"] == 2


# -- platform ----------------------------------------------------------------


def test_platform_payload_reconciles_and_digest_stable():
    first = run_quick(QUICK_PLATFORM)
    assert first["kind"] == "platform"
    kpis = first["kpis"]
    assert kpis["jobs"] >= 1
    assert kpis["total_cost_usd"] > 0
    assert kpis["attributed_fraction"] == pytest.approx(1.0)
    rec = first["reconciliation"]
    assert rec["invoiced_active_cost"] + rec["unattributed_cost"] == pytest.approx(
        rec["billing_total_cost"]
    )
    # per-tenant invoices sum to the platform total
    invoices = first["platform"]["invoices"]
    assert invoices
    invoice_total = sum(v["total_cost_usd"] for v in invoices.values())
    assert invoice_total == pytest.approx(kpis["total_cost_usd"], rel=1e-9)
    second = run_quick(QUICK_PLATFORM)
    assert second["digest"] == first["digest"]


def test_platform_isolated_baseline_block():
    data = dict(QUICK_PLATFORM)
    data["scenario"] = {"name": "quick-baseline", "kind": "platform", "seed": 1}
    data["report"] = {"isolated_baseline": True}
    payload = run_quick(data)
    baseline = payload["platform"]["isolated_baseline"]
    assert baseline["isolated_total_cost_usd"] > 0
    assert "isolated_savings_pct" in payload["kpis"]


# -- JSON hygiene ------------------------------------------------------------


def test_jsonify_coerces_numpy_and_rejects_garbage():
    np = pytest.importorskip("numpy")
    out = _jsonify({"a": np.float64(1.5), "b": (np.int64(2), 3)})
    assert out == {"a": 1.5, "b": [2, 3]}
    assert type(out["a"]) is float
    assert type(out["b"][0]) is int
    with pytest.raises(TypeError, match="non-JSON value"):
        _jsonify({"bad": object()})
