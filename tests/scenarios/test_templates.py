"""Committed template library: every template validates, runs end-to-end,
reconciles 100% of the bill, and yields the same digest twice.

This is the acceptance gate from the issue: >= 4 templates, seed-stable
KPI digests, exact invoice/billing reconciliation on every run.
"""

import pytest

from repro.scenarios import load_spec_text, run_scenario_spec
from repro.scenarios.cli import list_templates

TEMPLATES = list_templates()
NAMES = [name for name, _ in TEMPLATES]


def load(name):
    path = dict(TEMPLATES)[name]
    return load_spec_text(path.read_text(encoding="utf-8"), origin=path.name)


def test_library_ships_all_four_categories():
    assert len(TEMPLATES) >= 4
    assert {"fault-storm", "diurnal-multi-tenant", "spot-capacity-crunch",
            "rightsize-sweep"} <= set(NAMES)


@pytest.mark.parametrize("name", NAMES)
def test_template_validates_and_is_deterministic(name):
    spec = load(name)
    assert spec.name == name, "template file name must match scenario.name"
    assert spec.description, "committed templates document themselves"
    assert spec.deterministic, "committed templates must be digest-gateable"


@pytest.mark.parametrize("name", NAMES)
def test_template_digest_stable_across_reruns(name):
    spec = load(name)
    first = run_scenario_spec(spec)
    second = run_scenario_spec(spec)
    assert first["digest"] == second["digest"], (
        f"template {name!r} is not seed-deterministic"
    )
    # reconciliation ran (it raises on any mismatch, so presence == pass)
    assert first["reconciliation"]
    if spec.kind == "platform":
        assert first["kpis"]["attributed_fraction"] == pytest.approx(1.0)
    else:
        assert first["reconciliation"]["checked_runs"] == len(first["runs"])
        assert first["reconciliation"]["max_abs_error_usd"] <= 1e-9
    # committed templates must fit their own declared budgets
    assert first["budget"]["ok"], first["budget"]["violations"]


def test_fault_storm_absorbs_every_injected_fault():
    payload = run_scenario_spec(load("fault-storm"))
    kpis = payload["kpis"]
    assert kpis["faults_injected"] > 0, "a fault storm with no faults"
    assert kpis["faults_recovered"] == kpis["faults_injected"]
    (run,) = payload["runs"]
    assert run["critical_path"]["steps"] == run["steps"]


def test_rightsize_sweep_recommends_a_grid_member():
    payload = run_scenario_spec(load("rightsize-sweep"))
    spec = load("rightsize-sweep")
    grid = spec.sweep.combos(spec.workload.workers, spec.workload.isp_threshold)
    assert len(payload["runs"]) == len(grid)
    rec = payload["recommendation"]
    assert (rec["workers"], rec["isp_threshold"]) in grid


def test_diurnal_template_beats_isolation():
    payload = run_scenario_spec(load("diurnal-multi-tenant"))
    assert payload["kpis"]["isolated_savings_pct"] > 0, (
        "the shared pool should be cheaper than per-job isolation"
    )
