"""KPI layer: digests, budget evaluation, and *enforced* reconciliation
— a cooked bill must raise, never silently report."""

import pytest

from repro.scenarios import (
    BudgetSpec,
    ReconciliationError,
    evaluate_budget,
    kpi_digest,
    reconcile_platform,
    reconcile_single_job,
)
from repro.scenarios.kpi import finalize_report, summary_lines


# -- digest ------------------------------------------------------------------


def test_digest_excludes_itself_and_is_stable():
    payload = {"a": 1, "b": [1.5, "x"], "nested": {"k": True}}
    d1 = kpi_digest(payload)
    finalized = finalize_report(dict(payload))
    assert finalized["digest"] == d1
    # digest of the finalized payload (digest key present) is unchanged
    assert kpi_digest(finalized) == d1
    assert len(d1) == 64


def test_digest_is_sensitive_to_values_and_insensitive_to_key_order():
    base = {"a": 1, "b": 2}
    assert kpi_digest(base) == kpi_digest({"b": 2, "a": 1})
    assert kpi_digest(base) != kpi_digest({"a": 1, "b": 3})


def test_digest_rejects_nan():
    with pytest.raises(ValueError):
        kpi_digest({"x": float("nan")})


# -- budget ------------------------------------------------------------------


def test_budget_no_limits_always_ok():
    out = evaluate_budget(BudgetSpec(), {"total_cost_usd": 1e9})
    assert out == {"ok": True, "violations": []}


def test_budget_cost_ceiling():
    budget = BudgetSpec(max_cost_usd=0.5)
    assert evaluate_budget(budget, {"total_cost_usd": 0.4})["ok"]
    out = evaluate_budget(budget, {"total_cost_usd": 0.6})
    assert not out["ok"]
    assert out["violations"] == ["total cost ($) 0.6 exceeds budget 0.5"]


def test_budget_exec_time_checks_both_exec_and_makespan():
    budget = BudgetSpec(max_exec_time_s=100.0)
    assert not evaluate_budget(budget, {"exec_time_s": 150.0})["ok"]
    assert not evaluate_budget(budget, {"makespan_s": 150.0})["ok"]
    assert evaluate_budget(budget, {"exec_time_s": 50.0, "makespan_s": 99.0})["ok"]


def test_budget_queue_wait_and_convergence():
    budget = BudgetSpec(max_queue_wait_p95_s=60.0, require_converged=True)
    out = evaluate_budget(budget, {"queue_wait_p95_s": 61.0, "converged": False})
    assert len(out["violations"]) == 2
    assert "run did not converge but the budget requires it" in out["violations"]
    assert evaluate_budget(budget,
                           {"queue_wait_p95_s": 59.0, "converged": True})["ok"]


# -- single-job reconciliation (fakes expose the exact failure modes) --------


class FakeBilling:
    def __init__(self, total):
        self._total = total

    def total_cost(self):
        return self._total


class FakeMeter:
    def __init__(self, breakdown, total=None, faas_total=None):
        self._breakdown = breakdown
        self._total = sum(breakdown.values()) if total is None else total
        self.faas = None if faas_total is None else FakeBilling(faas_total)

    def total_cost(self):
        return self._total

    def breakdown(self):
        return dict(self._breakdown)


class FakeResult:
    def __init__(self, meter):
        self.meter = meter


def test_reconcile_single_job_passes_on_exact_books():
    meter = FakeMeter({"functions": 0.02, "storage": 0.01}, faas_total=0.02)
    out = reconcile_single_job(FakeResult(meter))
    assert out["meter_total_usd"] == pytest.approx(0.03)
    assert out["abs_error_usd"] <= 1e-12
    assert out["faas_total_usd"] == 0.02


def test_reconcile_single_job_fails_on_component_drift():
    meter = FakeMeter({"functions": 0.02, "storage": 0.01}, total=0.05)
    with pytest.raises(ReconciliationError, match="billed twice or not at all"):
        reconcile_single_job(FakeResult(meter))


def test_reconcile_single_job_fails_when_functions_line_disagrees_with_bill():
    meter = FakeMeter({"functions": 0.02, "storage": 0.01}, faas_total=0.03)
    with pytest.raises(ReconciliationError,
                       match="under/over-state the serverless bill"):
        reconcile_single_job(FakeResult(meter))


# -- platform reconciliation -------------------------------------------------


class FakeInvoiceReport:
    def __init__(self, invoiced, unattributed, bill):
        self._check = {
            "invoiced_active_cost": invoiced,
            "unattributed_cost": unattributed,
            "billing_total_cost": bill,
            "attributed_fraction": (invoiced / bill) if bill else 1.0,
        }

    def reconcile(self):
        return dict(self._check)


def test_reconcile_platform_passes_on_exact_books():
    out = reconcile_platform(FakeInvoiceReport(1.0, 0.0, 1.0))
    assert out["attributed_fraction"] == 1.0


def test_reconcile_platform_fails_on_identity_violation():
    with pytest.raises(ReconciliationError,
                       match="do not reproduce the cloud bill"):
        reconcile_platform(FakeInvoiceReport(0.7, 0.1, 1.0))


def test_reconcile_platform_strict_rejects_unattributed_residue():
    # books balance (0.9 + 0.1 == 1.0) but a dime never landed on an
    # invoice: strict mode (the committed-template bar) must refuse
    report = FakeInvoiceReport(0.9, 0.1, 1.0)
    with pytest.raises(ReconciliationError, match="unattributed"):
        reconcile_platform(report)
    out = reconcile_platform(report, strict=False)
    assert out["unattributed_cost"] == pytest.approx(0.1)


# -- summary rendering (pure string building, no I/O) ------------------------


def test_summary_lines_platform_and_single_job():
    platform_payload = {
        "name": "p", "kind": "platform", "seed": 0, "digest": "ab" * 32,
        "deterministic": True,
        "kpis": {"jobs": 10.0, "jobs_per_hour": 5.0, "queue_wait_p95_s": 2.0,
                 "total_cost_usd": 0.5, "cost_per_job_usd": 0.05,
                 "cold_fraction": 0.25, "isolated_savings_pct": 40.0},
        "budget": {"ok": True, "violations": []},
    }
    text = "\n".join(summary_lines(platform_payload))
    assert "40.0% cheaper" in text
    assert "p95 wait=2.00s" in text

    single_payload = {
        "name": "s", "kind": "single-job", "seed": 3, "digest": "cd" * 32,
        "deterministic": True,
        "runs": [{}],
        "kpis": {"exec_time_s": 12.0, "total_cost_usd": 0.01,
                 "converged": True, "faults_injected": 4,
                 "faults_recovered": 4},
        "recommendation": {"workers": 2, "isp_threshold": 0.7,
                           "total_cost_usd": 0.01, "exec_time_s": 12.0},
        "budget": {"ok": False, "violations": ["total cost too high"]},
    }
    text = "\n".join(summary_lines(single_payload))
    assert "faults injected=4 recovered=4" in text
    assert "recommended config: workers=2" in text
    assert "BUDGET VIOLATION: total cost too high" in text
