"""CLI surface: ``python -m repro.scenarios`` subcommands, exit codes,
report writing, and the ``repro.cli scenario ...`` forwarding."""

import json

import pytest

from repro.scenarios.cli import main

QUICK_TOML = """\
[scenario]
name = "cli-quick"
kind = "single-job"
seed = 3

[workload]
name = "pmf-ml10m"
workers = 2
max_steps = 5
"""


@pytest.fixture
def quick_spec(tmp_path):
    path = tmp_path / "cli_quick.toml"
    path.write_text(QUICK_TOML, encoding="utf-8")
    return path


def test_list_names_all_templates(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fault-storm", "diurnal-multi-tenant",
                 "spot-capacity-crunch", "rightsize-sweep"):
        assert name in out


def test_validate_template_by_name(capsys):
    assert main(["validate", "fault-storm"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK: fault-storm [single-job]")


def test_validate_spec_file_by_path(quick_spec, capsys):
    assert main(["validate", str(quick_spec)]) == 0
    assert "OK: cli-quick" in capsys.readouterr().out


def test_unknown_scenario_is_exit_2(capsys):
    assert main(["validate", "no-such-scenario"]) == 2
    err = capsys.readouterr().err
    assert "no such template or spec file" in err
    assert "fault-storm" in err  # the error lists what IS available


def test_invalid_spec_is_exit_2_with_origin(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        QUICK_TOML + "\n[faults]\ncrash_rate = -0.2\n", encoding="utf-8"
    )
    assert main(["validate", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "bad.toml: faults.crash_rate: must be >= 0.0, got -0.2" in err


def test_run_writes_report_json(quick_spec, tmp_path, capsys):
    report = tmp_path / "out" / "kpi.json"
    assert main(["run", str(quick_spec), "--report", str(report)]) == 0
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert payload["name"] == "cli-quick"
    assert payload["digest"]
    assert payload["reconciliation"]["checked_runs"] == 1
    out = capsys.readouterr().out
    assert "scenario cli-quick [single-job]" in out
    assert f"report written to {report}" in out


def test_run_seed_override(quick_spec, tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["run", str(quick_spec), "--seed", "7", "--report", str(a)]) == 0
    assert main(["run", str(quick_spec), "--seed", "7", "--report", str(b)]) == 0
    pa = json.loads(a.read_text(encoding="utf-8"))
    pb = json.loads(b.read_text(encoding="utf-8"))
    assert pa["seed"] == 7
    assert pa["digest"] == pb["digest"]


def test_run_rerun_check_passes_for_deterministic_spec(quick_spec, capsys):
    assert main(["run", str(quick_spec), "--rerun-check"]) == 0
    assert "digest stable across reruns" in capsys.readouterr().out


def test_budget_violation_is_exit_3(tmp_path, capsys):
    broke = tmp_path / "broke.toml"
    broke.write_text(
        QUICK_TOML + "\n[budget]\nmax_cost_usd = 0.0\n", encoding="utf-8"
    )
    assert main(["run", str(broke)]) == 3
    assert "BUDGET VIOLATION" in capsys.readouterr().out


def test_repro_cli_forwards_scenario_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["scenario", "list"]) == 0
    assert "fault-storm" in capsys.readouterr().out


def test_repro_cli_forwards_validate_errors(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["scenario", "validate", "no-such-scenario"]) == 2


def test_module_entry_point_exists():
    import repro.scenarios.__main__  # noqa: F401
