"""Spec validation: exact error paths + lossless dict round-trips."""

import dataclasses

import pytest

from repro.faults import FAULT_PROFILES
from repro.scenarios import (
    FaultSpec,
    PricingSpec,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    WorkloadSpec,
    spec_from_dict,
)
from repro.scenarios.spec import MAX_SWEEP_COMBOS


def minimal_single_job(**overrides):
    data = {
        "scenario": {"name": "t", "kind": "single-job"},
        "workload": {"name": "pmf-ml10m"},
    }
    data.update(overrides)
    return data


def minimal_platform(**overrides):
    data = {"scenario": {"name": "t", "kind": "platform"}}
    data.update(overrides)
    return data


# -- exact error messages ----------------------------------------------------


def err(data):
    with pytest.raises(SpecError) as excinfo:
        spec_from_dict(data)
    return str(excinfo.value), excinfo.value.path


class TestExactMessages:
    def test_unknown_section(self):
        msg, path = err(minimal_single_job(chaos={}))
        assert path == "chaos"
        assert msg.startswith("chaos: unknown section (expected one of ")

    def test_unknown_key_names_expected_keys(self):
        msg, _ = err(minimal_single_job(workload={"name": "pmf-ml10m", "foo": 1}))
        assert msg == (
            "workload.foo: unknown key (expected one of "
            "['autotune', 'backend', 'isp_threshold', 'kind', "
            "'max_steps', 'micro_batches', 'name', 'stages', 'sync', "
            "'target_loss', 'workers'])"
        )

    def test_negative_fault_rate(self):
        msg, path = err(minimal_single_job(faults={"crash_rate": -0.2}))
        assert msg == "faults.crash_rate: must be >= 0.0, got -0.2"
        assert path == "faults.crash_rate"

    def test_rate_above_one(self):
        msg, _ = err(minimal_single_job(faults={"crash_rate": 1.5}))
        assert msg == "faults.crash_rate: must be <= 1.0, got 1.5"

    def test_bad_type_int(self):
        msg, _ = err(
            minimal_single_job(workload={"name": "pmf-ml10m", "workers": "four"})
        )
        assert msg == "workload.workers: must be an integer, got 'four'"

    def test_bool_is_not_an_int(self):
        msg, _ = err(
            minimal_single_job(workload={"name": "pmf-ml10m", "workers": True})
        )
        assert msg == "workload.workers: must be an integer, got True"

    def test_missing_required_key(self):
        msg, _ = err({"scenario": {"kind": "single-job"}})
        assert msg == "scenario.name: is required"

    def test_missing_scenario_section(self):
        msg, _ = err({"workload": {"name": "pmf-ml10m"}})
        assert msg == "scenario: is required"

    def test_bad_workload_name(self):
        msg, _ = err(minimal_single_job(workload={"name": "nope"}))
        assert msg.startswith("workload.name: must be one of [")
        assert msg.endswith("got 'nope'")

    def test_bad_kind(self):
        msg, _ = err({"scenario": {"name": "t", "kind": "batch"}})
        assert msg == (
            "scenario.kind: must be one of ['platform', 'single-job'], "
            "got 'batch'"
        )

    def test_bad_name_charset(self):
        msg, _ = err({"scenario": {"name": "Bad Name", "kind": "platform"}})
        assert msg == (
            "scenario.name: must be lowercase letters/digits/dashes, "
            "got 'Bad Name'"
        )

    def test_bad_pair_shape(self):
        msg, _ = err(minimal_single_job(faults={"crash_window_s": [1.0]}))
        assert msg == (
            "faults.crash_window_s: must be a 2-element [lo, hi] number "
            "list, got [1.0]"
        )

    def test_inverted_pair(self):
        msg, _ = err(minimal_single_job(faults={"crash_window_s": [9.0, 1.0]}))
        assert msg == (
            "faults.crash_window_s: must satisfy lo <= hi, got [9.0, 1.0]"
        )


# -- structural / cross-section validation -----------------------------------


class TestCrossValidation:
    def test_single_job_requires_workload(self):
        msg, _ = err({"scenario": {"name": "t", "kind": "single-job"}})
        assert msg == "workload: is required for kind = 'single-job'"

    def test_platform_rejects_workload(self):
        msg, _ = err(minimal_platform(workload={"name": "pmf-ml10m"}))
        assert msg == (
            "workload: is a single-job section; not allowed for 'platform'"
        )

    def test_single_job_rejects_pool(self):
        msg, _ = err(minimal_single_job(pool={"concurrency": 4}))
        assert msg == "pool: is a platform section; not allowed for 'single-job'"

    def test_faults_need_sim_backend(self):
        msg, _ = err(
            minimal_single_job(
                workload={"name": "pmf-ml10m", "backend": "local"},
                faults={"crash_rate": 0.1},
            )
        )
        assert "fault injection needs workload.backend = 'sim'" in msg

    def test_pricing_needs_sim_backend(self):
        msg, _ = err(
            minimal_single_job(
                workload={"name": "pmf-ml10m", "backend": "procs"},
                pricing={"rate_per_gb_s": 2e-5},
            )
        )
        assert "cost metering needs workload.backend = 'sim'" in msg

    def test_default_pricing_ok_on_local_backend(self):
        spec = spec_from_dict(
            minimal_single_job(workload={"name": "pmf-ml10m", "backend": "local"})
        )
        assert spec.pricing == PricingSpec()
        assert not spec.deterministic

    def test_jobs_must_fit_pool(self):
        msg, _ = err(
            minimal_platform(jobs={"max_workers": 9}, pool={"concurrency": 4})
        )
        assert msg.startswith(
            "jobs.max_workers: must be <= pool.concurrency (4), got 9"
        )

    def test_profile_and_inline_rates_conflict(self):
        msg, _ = err(
            minimal_single_job(
                faults={"profile": "chaos", "crash_rate": 0.1}
            )
        )
        assert msg == (
            "faults: sets both a named 'profile' and inline rates; pick one"
        )

    def test_named_profile_lowers_to_registry_entry(self):
        spec = spec_from_dict(minimal_single_job(faults={"profile": "chaos"}))
        assert spec.faults.to_profile("t") is FAULT_PROFILES["chaos"]

    def test_inline_rates_lower_to_fresh_profile(self):
        spec = spec_from_dict(minimal_single_job(faults={"crash_rate": 0.25}))
        profile = spec.faults.to_profile("my-scn")
        assert profile.name == "scenario:my-scn"
        assert profile.crash_rate == 0.25

    def test_sweep_grid_cap(self):
        msg, _ = err(
            minimal_single_job(
                sweep={
                    "workers": list(range(1, 14)),
                    "isp_threshold": [i / 10 for i in range(10)],
                }
            )
        )
        assert msg == f"sweep: grid has 130 combos; the cap is {MAX_SWEEP_COMBOS}"

    def test_empty_sweep_rejected(self):
        msg, _ = err(minimal_single_job(sweep={"speed_tolerance": 1.5}))
        assert msg == (
            "sweep: must set at least one of 'workers' / 'isp_threshold'"
        )

    def test_queue_budget_is_platform_only(self):
        msg, _ = err(minimal_single_job(budget={"max_queue_wait_p95_s": 10.0}))
        assert msg == (
            "budget.max_queue_wait_p95_s: only applies to kind = 'platform'"
        )

    def test_critical_path_is_single_job_only(self):
        msg, _ = err(minimal_platform(report={"critical_path": True}))
        assert msg == (
            "report.critical_path: only applies to kind = 'single-job'"
        )


# -- pipeline + sync-mode validation -----------------------------------------


def pipeline_workload(**overrides):
    data = {
        "name": "mlp-synth",
        "kind": "mlp-pipeline",
        "workers": 3,
        "stages": 3,
        "micro_batches": 4,
    }
    data.update(overrides)
    return data


class TestPipelineValidation:
    def test_valid_pipeline_spec_parses(self):
        spec = spec_from_dict(minimal_single_job(workload=pipeline_workload()))
        wl = spec.workload
        assert (wl.kind, wl.stages, wl.micro_batches) == ("mlp-pipeline", 3, 4)
        assert spec.deterministic

    def test_pipeline_requires_stageable_workload(self):
        msg, path = err(
            minimal_single_job(workload=pipeline_workload(name="pmf-ml10m"))
        )
        assert path == "workload.kind"
        assert "not stageable" in msg

    def test_pipeline_needs_two_stages(self):
        msg, _ = err(minimal_single_job(
            workload=pipeline_workload(stages=1, workers=1)
        ))
        assert msg == "workload.stages: must be >= 2 for kind = 'mlp-pipeline', got 1"

    def test_pipeline_workers_must_equal_stages(self):
        msg, path = err(minimal_single_job(workload=pipeline_workload(workers=4)))
        assert path == "workload.workers"
        assert "set workers = stages (3), got 4" in msg

    def test_pipeline_requires_bsp(self):
        msg, _ = err(minimal_single_job(workload=pipeline_workload(sync="ssp")))
        assert "sync must be 'bsp', got 'ssp'" in msg

    def test_pipeline_rejects_isp_filter(self):
        msg, path = err(
            minimal_single_job(workload=pipeline_workload(isp_threshold=0.5))
        )
        assert path == "workload.isp_threshold"
        assert "data-parallel-only" in msg

    def test_pipeline_rejects_autotune(self):
        msg, _ = err(minimal_single_job(workload=pipeline_workload(autotune=True)))
        assert msg == "workload.autotune: a pipeline cannot scale in; must be false"

    def test_pipeline_rejects_faults_and_sweep(self):
        msg, path = err(minimal_single_job(workload=pipeline_workload(),
                                           faults={"crash_rate": 0.1}))
        assert (path, msg) == ("faults",
                              "faults: not supported with kind = 'mlp-pipeline'")
        msg, path = err(minimal_single_job(workload=pipeline_workload(),
                                           sweep={"workers": [2, 4]}))
        assert (path, msg) == ("sweep",
                              "sweep: not supported with kind = 'mlp-pipeline'")

    def test_pipeline_rejects_procs_backend(self):
        msg, path = err(
            minimal_single_job(workload=pipeline_workload(backend="procs"))
        )
        assert path == "workload.backend"
        assert "use 'sim' or 'local'" in msg

    def test_stages_are_pipeline_only(self):
        msg, path = err(
            minimal_single_job(workload={"name": "pmf-ml10m", "stages": 2})
        )
        assert path == "workload.stages"
        assert msg.endswith("stages/micro_batches only apply to kind = 'mlp-pipeline'")

    def test_pipeline_round_trip_keeps_stage_fields(self):
        spec = spec_from_dict(minimal_single_job(workload=pipeline_workload()))
        dumped = spec.to_dict()
        assert dumped["workload"]["stages"] == 3
        assert dumped["workload"]["micro_batches"] == 4
        assert spec_from_dict(dumped) == spec

    def test_data_parallel_dump_omits_stage_fields(self):
        dumped = spec_from_dict(minimal_single_job()).to_dict()
        assert "stages" not in dumped["workload"]
        assert "micro_batches" not in dumped["workload"]


class TestSyncModeValidation:
    def test_ssp_and_adaptive_parse(self):
        for sync in ("ssp", "adaptive"):
            spec = spec_from_dict(
                minimal_single_job(workload={"name": "pmf-ml10m", "sync": sync})
            )
            assert spec.workload.sync == sync

    def test_non_bsp_rejects_autotune(self):
        msg, path = err(minimal_single_job(
            workload={"name": "pmf-ml10m", "sync": "adaptive", "autotune": True}
        ))
        assert path == "workload.autotune"
        assert "requires sync = 'bsp'" in msg

    def test_non_bsp_rejects_isp_threshold(self):
        msg, path = err(minimal_single_job(
            workload={"name": "pmf-ml10m", "sync": "ssp", "isp_threshold": 0.5}
        ))
        assert path == "workload.isp_threshold"
        assert "ISP rides the" in msg

    def test_non_bsp_rejects_crash_faults_but_allows_stragglers(self):
        msg, path = err(minimal_single_job(
            workload={"name": "pmf-ml10m", "sync": "adaptive"},
            faults={"crash_rate": 0.1},
        ))
        assert path == "faults"
        assert "crash recovery requires sync = 'bsp'" in msg
        spec = spec_from_dict(minimal_single_job(
            workload={"name": "pmf-ml10m", "sync": "adaptive"},
            faults={"straggler_rate": 0.3},
        ))
        assert spec.faults.to_profile("t").crash_rate == 0.0


# -- determinism flag --------------------------------------------------------


def test_deterministic_property():
    assert spec_from_dict(minimal_platform()).deterministic
    assert spec_from_dict(minimal_single_job()).deterministic
    local = spec_from_dict(
        minimal_single_job(workload={"name": "pmf-ml10m", "backend": "local"})
    )
    assert not local.deterministic


# -- round trips -------------------------------------------------------------


FULL_SINGLE_JOB = {
    "scenario": {
        "name": "full-single",
        "kind": "single-job",
        "seed": 7,
        "description": "everything set",
    },
    "workload": {
        "name": "lr-criteo",
        "workers": 6,
        "backend": "sim",
        "isp_threshold": 0.5,
        "autotune": True,
        "max_steps": 40,
        "target_loss": 0.56,
    },
    "sweep": {"workers": [2, 4], "isp_threshold": [0.0, 0.5],
              "speed_tolerance": 1.3},
    "faults": {"crash_rate": 0.1, "crash_window_s": [1.0, 5.0],
               "straggler_rate": 0.2},
    "pricing": {"rate_per_gb_s": 2e-5, "idle_rate_fraction": 0.3},
    "budget": {"max_cost_usd": 1.5, "require_converged": True},
    "report": {"critical_path": True},
}

FULL_PLATFORM = {
    "scenario": {"name": "full-platform", "kind": "platform", "seed": 3},
    "traffic": {"tenants": 6, "horizon_s": 1800.0, "bursts_per_h": 1.0},
    "jobs": {"min_workers": 1, "max_workers": 3, "sync_every": 4},
    "pool": {"concurrency": 5, "memory_grades_mb": [1024]},
    "budget": {"max_queue_wait_p95_s": 900.0},
    "report": {"isolated_baseline": True},
}


@pytest.mark.parametrize("data", [FULL_SINGLE_JOB, FULL_PLATFORM],
                         ids=["single-job", "platform"])
def test_dict_round_trip_is_lossless(data):
    spec = spec_from_dict(data)
    again = spec_from_dict(spec.to_dict())
    assert again == spec
    # idempotent: dumping the reparsed spec yields the identical dict
    assert again.to_dict() == spec.to_dict()


def test_defaults_round_trip():
    spec = spec_from_dict(minimal_single_job())
    assert spec.workload == WorkloadSpec(name="pmf-ml10m")
    assert spec.seed == 0
    assert spec_from_dict(spec.to_dict()) == spec


def test_sweep_combos_grid():
    sweep = SweepSpec(workers=(2, 4), isp_threshold=(0.0, 0.7))
    assert sweep.combos(8, 0.1) == [(2, 0.0), (2, 0.7), (4, 0.0), (4, 0.7)]
    # base values fill whichever axis the sweep leaves unset
    assert SweepSpec(workers=(2, 4)).combos(8, 0.1) == [(2, 0.1), (4, 0.1)]
    assert SweepSpec(isp_threshold=(0.5,)).combos(8, 0.1) == [(8, 0.5)]


def test_fault_spec_round_trip_preserves_pairs_as_tuples():
    spec = FaultSpec.from_dict({"crash_rate": 0.1, "crash_window_s": [1.0, 5.0]})
    assert spec.crash_window_s == (1.0, 5.0)
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_specs_are_frozen():
    spec = spec_from_dict(minimal_single_job())
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 9


def test_scenario_spec_importable_from_package():
    # the public surface re-exports the whole spec layer
    import repro.scenarios as scenarios

    for name in ("ScenarioSpec", "SpecError", "spec_from_dict",
                 "run_scenario_spec", "load_spec_text"):
        assert hasattr(scenarios, name), name
    assert isinstance(spec_from_dict(minimal_platform()), ScenarioSpec)
