"""Loader: TOML/JSON text -> spec -> text round-trips, origin prefixes,
and tomllib / fallback-parser parity on every committed template."""

import json

import pytest

from repro.analysis.config import parse_toml_subset
from repro.scenarios import SpecError, load_spec_text, spec_from_dict
from repro.scenarios.cli import list_templates
from repro.scenarios.loader import detect_format, dump_spec_json, dump_spec_toml

MINIMAL_TOML = """\
[scenario]
name = "mini"
kind = "single-job"
seed = 5

[workload]
name = "pmf-ml10m"
workers = 2
max_steps = 10
"""


def test_load_toml_text():
    spec = load_spec_text(MINIMAL_TOML, origin="mini.toml")
    assert spec.name == "mini"
    assert spec.seed == 5
    assert spec.workload.workers == 2


def test_load_json_text():
    data = {
        "scenario": {"name": "mini", "kind": "single-job"},
        "workload": {"name": "pmf-ml10m"},
    }
    spec = load_spec_text(json.dumps(data), origin="mini.json")
    assert spec.name == "mini"


def test_detect_format():
    assert detect_format("x.json") == "json"
    assert detect_format("x.JSON") == "json"
    assert detect_format("x.toml") == "toml"
    assert detect_format("<spec>") == "toml"


def test_validation_error_is_origin_prefixed():
    bad = MINIMAL_TOML + "\n[faults]\ncrash_rate = -0.2\n"
    with pytest.raises(SpecError) as excinfo:
        load_spec_text(bad, origin="scenarios/fault_storm.toml")
    assert str(excinfo.value) == (
        "scenarios/fault_storm.toml: faults.crash_rate: "
        "must be >= 0.0, got -0.2"
    )


def test_parse_error_is_origin_prefixed():
    with pytest.raises(SpecError) as excinfo:
        load_spec_text("{not json", origin="broken.json")
    assert str(excinfo.value).startswith("broken.json: unparseable json: ")


def test_unknown_format_rejected():
    with pytest.raises(SpecError) as excinfo:
        load_spec_text(MINIMAL_TOML, origin="x.toml", fmt="yaml")
    assert "unknown spec format 'yaml'" in str(excinfo.value)


# -- dump -> load round trips ------------------------------------------------


def _template_specs():
    return [
        (name, load_spec_text(path.read_text(encoding="utf-8"), origin=path.name))
        for name, path in list_templates()
    ]


def test_templates_exist():
    names = [name for name, _ in list_templates()]
    assert names == sorted(names)
    for required in ("fault-storm", "diurnal-multi-tenant",
                     "spot-capacity-crunch", "rightsize-sweep"):
        assert required in names, required


@pytest.mark.parametrize(
    "name", [name for name, _ in list_templates()]
)
def test_toml_dump_reload_round_trip(name):
    spec = dict(_template_specs())[name]
    dumped = dump_spec_toml(spec)
    assert load_spec_text(dumped, origin=f"{name}.toml") == spec


@pytest.mark.parametrize(
    "name", [name for name, _ in list_templates()]
)
def test_json_dump_reload_round_trip(name):
    spec = dict(_template_specs())[name]
    dumped = dump_spec_json(spec)
    assert load_spec_text(dumped, origin=f"{name}.json") == spec


def test_file_round_trip_through_disk(tmp_path):
    """ISSUE acceptance: file -> dataclasses -> dict -> file, losslessly."""
    src = tmp_path / "scn.toml"
    src.write_text(MINIMAL_TOML, encoding="utf-8")
    spec = load_spec_text(src.read_text(encoding="utf-8"), origin=src.name)
    out = tmp_path / "out.toml"
    out.write_text(dump_spec_toml(spec), encoding="utf-8")
    reloaded = load_spec_text(out.read_text(encoding="utf-8"), origin=out.name)
    assert reloaded == spec
    assert reloaded.to_dict() == spec.to_dict()


# -- fallback parser parity (the 3.9/3.10 path) ------------------------------


@pytest.mark.parametrize(
    "name,path", list_templates(), ids=[n for n, _ in list_templates()]
)
def test_fallback_parser_parity_on_templates(name, path):
    """parse_toml_subset must build the same spec tomllib would.

    On 3.11+ this compares both parsers directly; on 3.9/3.10 it checks
    that the fallback alone produces a valid spec (tomllib is absent, so
    the fallback IS the production path).
    """
    text = path.read_text(encoding="utf-8")
    via_fallback = spec_from_dict(parse_toml_subset(text))
    try:
        import tomllib
    except ImportError:
        assert via_fallback.name == name
        return
    assert spec_from_dict(tomllib.loads(text)) == via_fallback


def test_fallback_parses_numeric_arrays():
    parsed = parse_toml_subset(
        "[faults]\ncrash_window_s = [0.5, 15.0]\n"
        "[pool]\nmemory_grades_mb = [1024, 2048]\nflags = [true, false]\n"
    )
    assert parsed["faults"]["crash_window_s"] == [0.5, 15.0]
    assert parsed["pool"]["memory_grades_mb"] == [1024, 2048]
    assert parsed["pool"]["flags"] == [True, False]


def test_fallback_parses_quoted_strings_with_commas():
    parsed = parse_toml_subset('[s]\nnames = ["a,b", "c"]\n')
    assert parsed["s"]["names"] == ["a,b", "c"]
