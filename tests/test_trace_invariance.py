"""The zero-perturbation invariant: tracing must not touch the schedule.

A run traced with a recording :class:`~repro.trace.Tracer` must produce a
monitor-trace digest bit-identical to an untraced run of the same seed —
the tracer only reads ``env.now``/``env.active_process`` and never
schedules, yields, or draws randomness.  CI enforces the same property
via ``python -m repro.analysis.determinism --trace-invariance``.
"""

from repro.analysis.determinism import (
    default_run,
    main,
    trace_invariance_check,
)
from repro.trace import Tracer


def test_traced_and_untraced_digests_match():
    untraced = default_run(seed=0)
    tracer = Tracer()
    traced = default_run(seed=0, tracer=tracer)
    assert untraced.trace_digest() == traced.trace_digest()
    # and the tracer really recorded the run, so the check isn't vacuous
    assert len(tracer.spans) > 0
    assert any(s.category == "step" for s in tracer.spans)


def test_trace_invariance_check_passes():
    report = trace_invariance_check(seed=1)
    assert report.ok
    assert len(set(report.digests)) == 1
    assert report.n_events > 0


def test_trace_invariance_cli_exits_zero(capsys):
    assert main(["--trace-invariance"]) == 0
    out = capsys.readouterr().out
    assert "trace-invariance: OK" in out
