"""Cost-attribution ledger: hand-built decomposition + end-to-end runs.

The synthetic tests pin the decomposition rules (self time, clipping,
container re-labelling, the rounding surcharge) on a trace small enough
to check by hand; the end-to-end tests assert the accounting identities
on real traced jobs — including, property-style, under randomized fault
profiles with the fault-tolerance machinery on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JobConfig, run_mlless
from repro.faas.billing import ActivationRecord, FaaSBilling
from repro.faults import FaultProfile
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD
from repro.trace import CostLedger, Span, Tracer, critical_path, straggler_report
from repro.trace.tracer import NO_SPAN

RATE = 1.7e-5


class FakeTrace:
    def __init__(self, spans):
        self.spans = spans
        self.events = []


def make_billing(*records):
    return FaaSBilling(rate_per_gb_s=RATE, records=list(records))


def record(function="worker-0", activation_id=0, memory_mb=2048,
           start=0.0, end=1.0, cold=True, ok=True):
    return ActivationRecord(function, activation_id, memory_mb,
                            start, end, cold, ok)


# ------------------------------------------------------------- synthetic
def hand_built_trace():
    """One activation: coldstart, a step with compute/storage/barrier."""
    spans = [
        Span(0, NO_SPAN, "invoke", "worker-0#0", 0.0, 1.0,
             {"function": "worker-0", "activation_id": 0, "worker": 0}),
        Span(1, 0, "coldstart", "dispatch", 0.0, 0.2),
        Span(2, 0, "step", "step-1", 0.2, 0.9, {"step": 1, "worker": 0}),
        Span(3, 2, "compute", "compute", 0.2, 0.5),
        Span(4, 2, "storage.get", "kv.get", 0.5, 0.8),
        Span(5, 2, "barrier", "barrier-1", 0.8, 0.9, {"step": 1, "worker": 0}),
        Span(6, 5, "mq.publish", "mq.publish", 0.8, 0.85),
    ]
    return FakeTrace(spans)


def test_synthetic_decomposition_by_hand():
    billing = make_billing(record())
    ledger = CostLedger.from_trace(hand_built_trace(), billing)
    by_cat = ledger.by_category()
    gb = 2048 / 1024.0
    assert by_cat["coldstart"]["seconds"] == pytest.approx(0.2)
    assert by_cat["compute"]["seconds"] == pytest.approx(0.3)
    assert by_cat["storage.get"]["seconds"] == pytest.approx(0.3)
    # barrier self time excludes its publish child
    assert by_cat["barrier"]["seconds"] == pytest.approx(0.05)
    assert by_cat["mq.publish"]["seconds"] == pytest.approx(0.05)
    # invoke self time (the uninstrumented 0.9..1.0 gap) lands in idle
    assert by_cat["idle"]["seconds"] == pytest.approx(0.1)
    # the step span is fully covered by its children
    assert by_cat["step"]["seconds"] == pytest.approx(0.0)
    # duration is exactly the billed duration: no rounding surcharge
    assert by_cat["billing.rounding"]["seconds"] == pytest.approx(0.0)
    assert by_cat["coldstart"]["gb_s"] == pytest.approx(0.2 * gb)
    assert ledger.total_cost() == billing.total_cost()
    rec = ledger.reconcile()
    assert rec["attributed_fraction"] == pytest.approx(1.0)
    assert rec["abs_error"] == pytest.approx(0.0, abs=1e-12)


def test_synthetic_phases_and_worker_label():
    billing = make_billing(record())
    ledger = CostLedger.from_trace(hand_built_trace(), billing)
    by_phase = ledger.by_phase()
    # everything inside the step span is "train"
    assert by_phase["train"]["seconds"] == pytest.approx(0.7)
    assert by_phase["dispatch"]["seconds"] == pytest.approx(0.2)
    assert by_phase["runtime"]["seconds"] == pytest.approx(0.1)
    assert set(ledger.by_worker()) == {"worker-0"}
    assert set(ledger.by_function()) == {"worker-0"}


def test_rounding_surcharge_completes_billed_duration():
    # 0.73 s of wall time bills as 0.8 s: 0.07 s of surcharge
    billing = make_billing(record(end=0.73))
    spans = [
        Span(0, NO_SPAN, "invoke", "worker-0#0", 0.0, 0.73,
             {"function": "worker-0", "activation_id": 0}),
        Span(1, 0, "compute", "compute", 0.0, 0.73),
    ]
    ledger = CostLedger.from_trace(FakeTrace(spans), billing)
    by_cat = ledger.by_category()
    assert by_cat["compute"]["seconds"] == pytest.approx(0.73)
    assert by_cat["billing.rounding"]["seconds"] == pytest.approx(0.07)
    assert ledger.row_cost() == pytest.approx(billing.total_cost())


def test_open_span_clips_to_record_end():
    # A crashed activation leaves spans open; they clip to the billed window.
    billing = make_billing(record(end=0.5, ok=False))
    spans = [
        Span(0, NO_SPAN, "invoke", "worker-0#0", 0.0, None,
             {"function": "worker-0", "activation_id": 0}),
        Span(1, 0, "compute", "compute", 0.1, None),
    ]
    ledger = CostLedger.from_trace(FakeTrace(spans), billing)
    by_cat = ledger.by_category()
    assert by_cat["compute"]["seconds"] == pytest.approx(0.4)
    assert by_cat["idle"]["seconds"] == pytest.approx(0.1)
    assert ledger.total_cost() == billing.total_cost()


def test_record_without_invoke_span_is_unattributed():
    billing = make_billing(record(), record(function="ghost", activation_id=9))
    ledger = CostLedger.from_trace(hand_built_trace(), billing)
    rec = ledger.reconcile()
    assert ledger.by_category()["unattributed"]["seconds"] == pytest.approx(1.0)
    # half the GB-s (one of two identical records) is unattributed
    assert rec["attributed_fraction"] == pytest.approx(0.5)
    assert ledger.total_cost() == billing.total_cost()


def test_empty_trace_attributes_nothing_but_reconciles():
    billing = make_billing(record())
    ledger = CostLedger.from_trace(FakeTrace([]), billing)
    assert set(ledger.by_category()) == {"unattributed"}
    assert ledger.total_cost() == billing.total_cost()
    table = ledger.category_table()
    assert table[0]["category"] == "unattributed"
    assert table[0]["share_pct"] == pytest.approx(100.0)


# ------------------------------------------------------------ end-to-end
SPEC = MovieLensSpec(n_users=60, n_movies=50, n_ratings=3_000, rank=3,
                     batch_size=400)


def small_config(faults=None, seed=5, **kwargs):
    defaults = dict(
        model=PMF(SPEC.n_users, SPEC.n_movies, rank=4, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9),
        dataset=movielens_like(SPEC, seed=2),
        n_workers=3,
        significance_v=0.5,
        target_loss=None,
        max_steps=20,
        seed=seed,
        faults=faults,
    )
    defaults.update(kwargs)
    return JobConfig(**defaults)


def run_traced(config):
    tracer = Tracer()
    result = run_mlless(config, tracer=tracer)
    return result, tracer, result.meter.faas


def test_real_run_reconciles_exactly():
    result, tracer, billing = run_traced(small_config())
    assert result.total_steps > 0
    ledger = CostLedger.from_trace(tracer, billing)
    # the headline identity: the ledger reproduces the bill bit-for-bit
    assert ledger.total_cost() == billing.total_cost()
    rec = ledger.reconcile()
    assert rec["abs_error"] < 1e-12
    assert rec["attributed_fraction"] >= 0.99
    categories = set(ledger.by_category())
    assert {"compute", "coldstart", "storage.get", "barrier",
            "billing.rounding"} <= categories
    assert "unattributed" not in categories
    workers = set(ledger.by_worker())
    assert {"worker-0", "worker-1", "worker-2", "supervisor"} <= workers


def test_real_run_critical_path_and_stragglers():
    result, tracer, _billing = run_traced(small_config())
    rows = critical_path(tracer)
    assert rows, "a completed run must yield critical-path steps"
    assert len(rows) <= result.total_steps
    for row in rows:
        assert row["workers"] == 3
        assert row["bound_worker"] in {0, 1, 2}
        assert row["work_s"] > 0.0
        assert row["skew_s"] >= 0.0
        assert row["barrier_s"] >= 0.0
    report = straggler_report(tracer)
    assert [r["worker"] for r in report] == [0, 1, 2]
    assert sum(r["bounded_steps"] for r in report) == len(rows)
    for r in report:
        assert 0.0 <= r["idle_fraction"] < 1.0


# ------------------------------------------- property: faulty runs, too
fault_profiles = st.builds(
    FaultProfile,
    name=st.just("prop"),
    crash_rate=st.floats(min_value=0.0, max_value=0.6),
    crash_window_s=st.just((0.2, 2.0)),
    coldstart_spike_rate=st.floats(min_value=0.0, max_value=0.5),
    straggler_rate=st.floats(min_value=0.0, max_value=0.5),
    message_loss_rate=st.floats(min_value=0.0, max_value=0.15),
    kv_error_rate=st.floats(min_value=0.0, max_value=0.1),
    cos_error_rate=st.floats(min_value=0.0, max_value=0.1),
)


@settings(max_examples=6, deadline=None)
@given(profile=fault_profiles, seed=st.integers(min_value=0, max_value=2**16))
def test_ledger_reconciles_under_random_faults(profile, seed):
    config = small_config(
        faults=profile,
        seed=seed,
        max_steps=8,
        fault_tolerance=True,
        barrier_timeout_s=5.0,
    )
    _result, tracer, billing = run_traced(config)
    ledger = CostLedger.from_trace(tracer, billing)
    assert ledger.total_cost() == billing.total_cost()
    rec = ledger.reconcile()
    # to-the-cent agreement (and in fact exact row-sum agreement)
    assert round(rec["ledger_row_cost"], 2) == round(rec["billing_total_cost"], 2)
    assert rec["abs_error"] < 1e-9
    assert rec["attributed_fraction"] >= 0.99
