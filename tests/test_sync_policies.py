"""Unit tests for the sync-policy objects and the adaptive controller."""

import pytest

from repro.core import AdaptiveConfig, AdaptiveController, JobConfig
from repro.core.policies import (
    BARRIER,
    GOSSIP,
    SCALE_ACTIVE,
    SCALE_CONFIGURED,
    gossip_policy,
    resolve_policy,
)
from repro.ml.data import MLPSpec, mlp_synth
from repro.ml.models import LayeredMLP
from repro.ml.optim import Adam


def config(**overrides):
    spec = MLPSpec(n_samples=400, n_features=4, hidden=(4,), batch_size=100)
    kwargs = dict(
        model=LayeredMLP([4, 4, 1]),
        make_optimizer=lambda: Adam(lr=0.01),
        dataset=mlp_synth(spec, seed=1),
        n_workers=2,
        max_steps=5,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


# -- resolve_policy ----------------------------------------------------------


def test_bsp_policy():
    policy = resolve_policy(config(sync="bsp"))
    assert policy.name == "bsp"
    assert policy.family == BARRIER
    assert policy.traced_steps
    assert policy.staleness == 0
    assert policy.scale_mode == SCALE_ACTIVE


def test_isp_is_bsp_with_significance():
    assert resolve_policy(config(significance_v=0.5)).name == "isp"


def test_ssp_policy():
    policy = resolve_policy(config(sync="ssp", ssp_staleness=3))
    assert policy.name == "ssp"
    assert policy.family == GOSSIP
    assert not policy.traced_steps
    assert policy.staleness == 3
    assert policy.scale_mode == SCALE_CONFIGURED


def test_adaptive_starts_under_the_barrier_then_hops_to_gossip():
    cfg = config(sync="adaptive", ssp_staleness=2)
    start = resolve_policy(cfg)
    assert (start.name, start.family) == ("adaptive", BARRIER)
    hopped = gossip_policy(cfg)
    assert (hopped.name, hopped.family) == ("adaptive", GOSSIP)
    assert hopped.staleness == 2
    # unlike plain SSP, the hopped policy keeps averaging over the pool
    # that actually remains after barrier-phase evictions
    assert hopped.scale_mode == SCALE_ACTIVE


# -- AdaptiveConfig validation -----------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"warmup_steps": -1},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"skew_threshold": 0.0},
        {"patience": 0},
        {"evict_patience": 0},
        {"min_pool": 0},
        {"max_evictions": -1},
        {"cooldown_steps": -1},
    ],
)
def test_adaptive_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        AdaptiveConfig(**kwargs)


# -- AdaptiveController ------------------------------------------------------


def controller(**overrides):
    kwargs = dict(
        warmup_steps=0,
        ewma_alpha=1.0,
        skew_threshold=0.5,
        patience=2,
        evict_patience=2,
        min_pool=2,
        max_evictions=1,
        cooldown_steps=2,
    )
    kwargs.update(overrides)
    return AdaptiveController(AdaptiveConfig(**kwargs), n_workers=3)


def barrier(ctrl, step, now, arrivals, active=(0, 1, 2)):
    """Feed one barrier's reports then close it."""
    for worker, at in arrivals.items():
        ctrl.note_report(step, worker, at)
    return ctrl.observe_barrier(step, now, list(active))


def test_first_barrier_never_decides():
    ctrl = controller()
    # no previous barrier to measure a duration against
    assert barrier(ctrl, 0, 1.0, {0: 0.1, 1: 0.9}).action == "none"


def test_diffuse_skew_switches_after_patience():
    ctrl = controller()
    barrier(ctrl, 0, 1.0, {0: 0.1, 1: 0.9})
    # the straggler alternates, so no single worker builds an evict streak
    assert barrier(ctrl, 1, 2.0, {0: 1.2, 1: 1.9}).action == "none"
    decision = barrier(ctrl, 2, 3.0, {1: 2.2, 0: 2.9})
    assert decision.action == "switch"
    assert "skew ratio" in decision.reason
    assert ctrl.decisions == [decision]


def test_balanced_barriers_never_switch():
    ctrl = controller()
    for step in range(6):
        decision = barrier(
            ctrl, step, float(step + 1),
            {0: step + 0.50, 1: step + 0.52},
        )
        assert decision.action == "none"
    assert ctrl.decisions == []


def test_persistent_straggler_is_evicted_then_cooldown_holds():
    ctrl = controller(patience=10)
    barrier(ctrl, 0, 1.0, {0: 0.1, 1: 0.9, 2: 0.2})
    assert barrier(ctrl, 1, 2.0, {0: 1.1, 1: 1.9, 2: 1.2}).action == "none"
    decision = barrier(ctrl, 2, 3.0, {0: 2.1, 1: 2.9, 2: 2.2})
    assert decision.action == "evict"
    assert decision.victim == 1
    # eviction budget is spent and the cooldown suppresses reactions
    assert barrier(ctrl, 3, 4.0, {0: 3.1, 2: 3.9}, active=(0, 2)).action == "none"


def test_warmup_suppresses_decisions():
    ctrl = controller(warmup_steps=10)
    for step in range(8):
        assert barrier(
            ctrl, step, float(step + 1),
            {0: step + 0.1, 1: step + 0.9},
        ).action == "none"


def test_min_pool_blocks_eviction_and_escalates_to_switch():
    ctrl = controller(min_pool=2, patience=3)
    barrier(ctrl, 0, 1.0, {0: 0.1, 1: 0.9}, active=(0, 1))
    barrier(ctrl, 1, 2.0, {0: 1.1, 1: 1.9}, active=(0, 1))
    # worker 1 has straggled for evict_patience barriers, but the pool is
    # already at the floor: the controller escalates to a sync switch.
    barrier(ctrl, 2, 3.0, {0: 2.1, 1: 2.9}, active=(0, 1))
    decision = barrier(ctrl, 3, 4.0, {0: 3.1, 1: 3.9}, active=(0, 1))
    assert [d.action for d in ctrl.decisions] == ["switch"]
    assert decision.action == "switch"


def test_clone_is_independent():
    ctrl = controller()
    barrier(ctrl, 0, 1.0, {0: 0.1, 1: 0.9})
    dup = ctrl.clone()
    barrier(ctrl, 1, 2.0, {0: 1.2, 1: 1.9})
    barrier(ctrl, 2, 3.0, {1: 2.2, 0: 2.9})
    assert [d.action for d in ctrl.decisions] == ["switch"]
    assert dup.decisions == []
    # the clone replays the same future independently
    barrier(dup, 1, 2.0, {0: 1.2, 1: 1.9})
    barrier(dup, 2, 3.0, {1: 2.2, 0: 2.9})
    assert [d.action for d in dup.decisions] == ["switch"]
