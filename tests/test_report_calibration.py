"""Unit tests for report rendering and the calibration cost model."""

import pytest

from repro.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.report import banner, render_series, render_table


# ------------------------------------------------------------------ report
def test_render_table_alignment_and_content():
    rows = [
        {"name": "a", "value": 1.5},
        {"name": "bb", "value": 20_000.0},
    ]
    out = render_table(rows, "title")
    lines = out.splitlines()
    assert lines[0] == "title"
    assert "name" in lines[1] and "value" in lines[1]
    assert "20,000" in out
    assert "1.5" in out


def test_render_table_none_becomes_dash():
    out = render_table([{"x": None}])
    assert "-" in out.splitlines()[-1]


def test_render_table_empty():
    assert "(empty)" in render_table([], "t")
    assert render_table([]) == "(empty)"


def test_render_table_small_floats_use_sig_figs():
    out = render_table([{"x": 0.000123456}])
    assert "0.0001235" in out


def test_render_series_downsamples():
    xs = list(range(100))
    ys = [x * 2 for x in xs]
    out = render_series("s", xs, ys, max_points=5)
    assert "[100 pts]" in out
    assert "(99, 198)" in out  # last point always included
    assert out.count("(") <= 7


def test_render_series_validates_lengths():
    with pytest.raises(ValueError):
        render_series("s", [1, 2], [1])


def test_render_series_empty():
    assert "(empty)" in render_series("s", [], [])


def test_banner():
    out = banner("hello")
    lines = out.splitlines()
    assert lines[0] == "=" * 5 * 1 or lines[0].startswith("=")
    assert lines[1] == "hello"


# -------------------------------------------------------------- calibration
def test_mlless_step_seconds_includes_overhead():
    c = DEFAULT_CALIBRATION
    assert c.mlless_step_seconds(0) == c.mlless_step_overhead_s
    assert c.mlless_step_seconds(c.mlless_flops_per_s) == pytest.approx(
        c.mlless_step_overhead_s + 1.0
    )


def test_serverful_step_seconds_components():
    c = Calibration(
        serverful_flops_per_s_per_core=1e8,
        serverful_parallel_eff=1.0,
        serverful_overhead_s_per_mnnz=100.0,
        serverful_dense_opt_flops_per_param=10.0,
    )
    t = c.serverful_step_seconds(
        dense_flops=1e8, batch_nnz=1e6, n_params=1e7, cores=1
    )
    # 1 s compute + 100 s overhead + 1 s optimizer pass
    assert t == pytest.approx(1.0 + 100.0 + 1.0)


def test_serverful_multicore_uses_parallel_efficiency():
    c = Calibration(serverful_parallel_eff=0.5)
    single = c.serverful_step_seconds(1e8, 0, 0, cores=1)
    quad = c.serverful_step_seconds(1e8, 0, 0, cores=4)
    assert quad == pytest.approx(single / 2.0)  # 4 * 0.5 = 2x


def test_pywren_task_seconds():
    c = DEFAULT_CALIBRATION
    assert c.pywren_task_seconds(0) == c.pywren_task_overhead_s
    assert c.pywren_task_seconds(c.pywren_flops_per_s) == pytest.approx(
        c.pywren_task_overhead_s + 1.0
    )


def test_calibration_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.mlless_flops_per_s = 1.0


def test_calibration_ordering_mlless_fastest():
    """The calibrated kernels preserve the paper's speed ordering for a
    representative PMF step."""
    c = DEFAULT_CALIBRATION
    flops_sparse = 6.0 * 500 * 16
    flops_dense = 60.0 * 500 * 16
    nnz = 2 * 500 * 16
    mlless = c.mlless_step_seconds(flops_sparse)
    srv = c.serverful_step_seconds(flops_dense, nnz, n_params=96_000, cores=1)
    pywren = 2 * c.pywren_task_seconds(flops_sparse)
    # MLLess's specialized kernel is by far the fastest; the baselines'
    # full ordering additionally involves storage I/O (PyWren's dominant
    # cost), which is charged by the services, not here.
    assert mlless < srv and mlless < pywren
    assert mlless < 0.1 < srv
