"""Unit tests for the span/event model and the recording tracer.

Covers the per-process scope stacks (nesting, adoption, cross-process
close), the NullTracer's no-op contract, and the platform integration:
an activation's invoke span must contain its coldstart and compute spans
with the attributes the ledger joins on.
"""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec
from repro.sim import Environment, RandomStreams
from repro.trace import NULL_TRACER, NullTracer, Span, Tracer, span_children
from repro.trace.tracer import NO_SPAN


class FakeEnv:
    """Just enough environment for the tracer: a clock and a process slot."""

    def __init__(self):
        self.now = 0.0
        self.active_process = None


# ------------------------------------------------------------- NullTracer
def test_null_tracer_is_a_disabled_noop():
    t = NULL_TRACER
    assert t.enabled is False
    assert t.bind(FakeEnv()) is t
    assert t.begin("compute", "c") == NO_SPAN
    assert t.event("x", "y") == -1
    assert t.current_span_id() == NO_SPAN
    # end / annotate / adopt must swallow anything without state
    t.end(NO_SPAN)
    t.end(7)
    t.annotate(3, foo=1)
    t.adopt(object(), 5)


def test_null_tracer_singleton_is_shared_default():
    assert isinstance(NULL_TRACER, NullTracer)
    assert not isinstance(NULL_TRACER, Tracer)
    assert Tracer.enabled is True and NullTracer.enabled is False


# ------------------------------------------------------------ span basics
def test_span_nesting_and_parenting():
    env = FakeEnv()
    t = Tracer().bind(env)
    outer = t.begin("invoke", "worker-0", function="worker-0")
    env.now = 1.0
    inner = t.begin("compute", "grad")
    assert t.current_span_id() == inner
    env.now = 3.0
    t.end(inner)
    assert t.current_span_id() == outer
    env.now = 4.0
    t.end(outer, ok=True)

    s_outer, s_inner = t.spans[outer], t.spans[inner]
    assert s_outer.parent_id == NO_SPAN
    assert s_inner.parent_id == outer
    assert (s_inner.start, s_inner.end) == (1.0, 3.0)
    assert s_inner.duration == 2.0
    assert s_outer.attrs == {"function": "worker-0", "ok": True}
    assert s_outer.finished and s_inner.finished
    kids = span_children(t.spans)
    assert [c.span_id for c in kids[outer]] == [inner]


def test_open_span_has_no_duration():
    t = Tracer().bind(FakeEnv())
    sid = t.begin("compute", "c")
    span = t.spans[sid]
    assert not span.finished
    assert span.duration is None
    assert span.to_dict()["end"] is None


def test_double_end_keeps_first_end_time():
    env = FakeEnv()
    t = Tracer().bind(env)
    sid = t.begin("compute", "c")
    env.now = 2.0
    t.end(sid)
    env.now = 5.0
    t.end(sid)  # idempotent: the span already closed at t=2
    assert t.spans[sid].end == 2.0


def test_events_parent_under_current_span():
    env = FakeEnv()
    t = Tracer().bind(env)
    root_event = t.event("scale_in", "evict", victim=3)
    sid = t.begin("step", "step-1")
    env.now = 1.5
    nested = t.event("filter.decision", "significance", significant=False)
    t.end(sid)
    assert t.events[root_event].parent_id == NO_SPAN
    assert t.events[nested].parent_id == sid
    assert t.events[nested].ts == 1.5
    assert t.events[nested].attrs == {"significant": False}


def test_annotate_merges_attrs():
    t = Tracer().bind(FakeEnv())
    sid = t.begin("invoke", "f", function="f")
    t.annotate(sid, worker=2)
    t.annotate(NO_SPAN, ignored=True)  # sentinel is a no-op
    assert t.spans[sid].attrs == {"function": "f", "worker": 2}


# --------------------------------------------- per-process scopes + adopt
def test_scopes_are_per_process():
    env = FakeEnv()
    t = Tracer().bind(env)
    proc_a, proc_b = object(), object()
    env.active_process = proc_a
    a = t.begin("step", "step-1", worker=0)
    env.active_process = proc_b
    b = t.begin("step", "step-1", worker=1)
    # concurrent processes must not nest under each other
    assert t.spans[a].parent_id == NO_SPAN
    assert t.spans[b].parent_id == NO_SPAN
    assert t.current_span_id() == b
    env.active_process = proc_a
    assert t.current_span_id() == a


def test_adopt_seeds_child_process_scope():
    env = FakeEnv()
    t = Tracer().bind(env)
    invoke = t.begin("invoke", "worker-0")
    child = object()
    t.adopt(child, invoke)
    env.active_process = child
    inner = t.begin("compute", "c")
    assert t.spans[inner].parent_id == invoke
    t.end(inner)
    # the adopted span is still owned by the opener
    assert t.spans[invoke].end is None
    env.active_process = None
    t.end(invoke)
    assert t.spans[invoke].finished


def test_cross_process_end_pops_origin_stack():
    env = FakeEnv()
    t = Tracer().bind(env)
    proc = object()
    env.active_process = proc
    sid = t.begin("invoke", "f")
    # the platform finalizer closes the span from a kernel callback
    env.active_process = None
    t.end(sid)
    env.active_process = proc
    assert t.current_span_id() == NO_SPAN


def test_bind_refuses_second_environment():
    t = Tracer()
    env = FakeEnv()
    t.bind(env)
    t.bind(env)  # idempotent
    with pytest.raises(ValueError):
        t.bind(FakeEnv())


def test_unbound_tracer_records_at_time_zero():
    t = Tracer()
    sid = t.begin("compute", "c")
    t.end(sid)
    assert (t.spans[sid].start, t.spans[sid].end) == (0.0, 0.0)


def test_span_repr_and_children_helper():
    spans = [
        Span(0, NO_SPAN, "invoke", "f", 0.0, 2.0),
        Span(1, 0, "compute", "c", 0.5, 1.5),
        Span(2, 0, "storage.get", "g", 1.5),
    ]
    assert "open" in repr(spans[2])
    kids = span_children(spans)
    assert [s.span_id for s in kids[0]] == [1, 2]
    assert NO_SPAN not in kids


# ------------------------------------------------- platform integration
def test_platform_invoke_produces_span_tree():
    env = Environment()
    tracer = Tracer()
    platform = FaaSPlatform(env, RandomStreams(seed=0), tracer=tracer)

    def handler(ctx, payload):
        yield from ctx.compute(1.0)
        ctx.annotate(worker=7)
        return "done"

    platform.register(FunctionSpec("worker-7", handler))
    act = platform.invoke("worker-7")
    env.run()
    assert act.result() == "done"

    by_cat = {}
    for span in tracer.spans:
        by_cat.setdefault(span.category, []).append(span)
    assert set(by_cat) == {"invoke", "coldstart", "compute"}
    invoke = by_cat["invoke"][0]
    coldstart = by_cat["coldstart"][0]
    compute = by_cat["compute"][0]
    assert coldstart.parent_id == invoke.span_id
    assert compute.parent_id == invoke.span_id
    # the attributes the ledger joins on
    assert invoke.attrs["function"] == "worker-7"
    assert invoke.attrs["activation_id"] == act.record.activation_id
    assert invoke.attrs["ok"] is True
    assert invoke.attrs["worker"] == 7  # via ctx.annotate
    assert coldstart.attrs["cold"] is True
    assert coldstart.attrs["cold_extra_s"] > 0.0
    assert compute.attrs["cpu_s"] == 1.0
    # span bounds sit inside the billed window
    assert invoke.start == act.record.start
    assert invoke.end == act.record.end
    assert invoke.start <= coldstart.start <= coldstart.end <= compute.start


def test_platform_warm_invoke_has_zero_cold_extra():
    env = Environment()
    tracer = Tracer()
    platform = FaaSPlatform(env, RandomStreams(seed=0), tracer=tracer)

    def handler(ctx, payload):
        yield from ctx.compute(0.2)

    platform.register(FunctionSpec("f", handler))

    def driver():
        first = platform.invoke("f")
        yield first.process
        second = platform.invoke("f")
        yield second.process

    env.process(driver())
    env.run()
    colds = [s for s in tracer.spans if s.category == "coldstart"]
    assert [s.attrs["cold"] for s in colds] == [True, False]
    assert colds[1].attrs["cold_extra_s"] == 0.0
