"""Unit tests for the command-line entry point."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "lr-criteo" in out and "pmf-ml10m" in out and "pmf-ml20m" in out


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.workload == "pmf-ml10m"
    assert args.system == "mlless"
    assert args.workers == 12
    assert args.v == 0.0
    assert not args.autotune


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--workload", "bert"])


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "quantum"])


def test_cli_runs_small_mlless_job(capsys):
    code = main(
        [
            "--workload", "pmf-ml10m", "--workers", "4",
            "--max-steps", "10", "--target", "-1.0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "result" in out
    assert "cost breakdown" in out
    assert "functions" in out
