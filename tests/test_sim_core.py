"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    SimulationError,
)


def test_environment_starts_at_zero():
    assert Environment().now == 0.0


def test_environment_custom_initial_time():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_event_succeed_delivers_value():
    env = Environment()
    evt = env.event()
    results = []

    def proc():
        value = yield evt
        results.append(value)

    env.process(proc())
    evt.succeed(42)
    env.run()
    assert results == [42]


def test_event_cannot_trigger_twice():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError("boom"))


def test_event_value_before_trigger_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_event_fail_raises_inside_process():
    env = Environment()
    evt = env.event()
    caught = []

    def proc():
        try:
            yield evt
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    evt.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failure_surfaces_from_run():
    env = Environment()
    evt = env.event()
    evt.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_process_return_value_is_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    p = env.process(proc())
    env.run()
    assert p.ok and p.value == "done"


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return 99

    p = env.process(proc())
    assert env.run(until=p) == 99
    assert env.now == 2


def test_process_waits_for_subprocess():
    env = Environment()
    order = []

    def child():
        yield env.timeout(5)
        order.append("child")
        return "child-result"

    def parent():
        result = yield env.process(child())
        order.append("parent")
        return result

    p = env.process(parent())
    env.run()
    assert order == ["child", "parent"]
    assert p.value == "child-result"


def test_exception_propagates_to_waiting_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("child failed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return f"caught: {exc}"

    p = env.process(parent())
    env.run()
    assert p.value == "caught: child failed"


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(SimulationError):
        env.run()
    assert not p.ok


def test_same_time_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_determinism_across_runs():
    def build():
        env = Environment()
        order = []

        def proc(tag, delay):
            yield env.timeout(delay)
            order.append((tag, env.now))

        delays = [3, 1, 2, 1, 3]
        for tag, d in enumerate(delays):
            env.process(proc(tag, d))
        env.run()
        return order

    assert build() == build()


def test_interrupt_raises_in_target():
    env = Environment()
    events = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            events.append(("interrupted", intr.cause, env.now))

    def interrupter(target):
        yield env.timeout(3)
        target.interrupt(cause="deadline")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert events == [("interrupted", "deadline", 3)]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc():
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            errors.append(True)
        yield env.timeout(0)

    env.process(proc())
    env.run()
    assert errors == [True]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_without_events_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_clock_not_inf_after_run_to_exhaustion():
    env = Environment()
    env.timeout(2)
    env.run()
    assert env.now == 2.0


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_run_until_untriggerable_event_raises():
    env = Environment()
    evt = env.event()  # never triggered, no other events
    with pytest.raises(SimulationError):
        env.run(until=evt)
