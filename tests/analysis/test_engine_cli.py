"""Engine plumbing: config parsing, fingerprints, baseline files, CLI."""

import json
import textwrap

import pytest

from repro.analysis import (
    Finding,
    SimLintConfig,
    load_baseline,
    load_config,
    write_baseline,
)
from repro.analysis.cli import main as cli_main
from repro.analysis.config import config_from_table, parse_toml_subset
from repro.analysis.engine import module_path, parse_suppressions

BAD_SIM_MODULE = """
import time

def latency():
    return time.time()
"""


def write_package(tmp_path, source=BAD_SIM_MODULE, layer="sim"):
    package = tmp_path / "pkg"
    (package / layer).mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / layer / "__init__.py").write_text("")
    (package / layer / "mod.py").write_text(textwrap.dedent(source))
    return package


# -- config ------------------------------------------------------------------


def test_toml_subset_parser_matches_expected_shape():
    text = textwrap.dedent(
        """
        [project]
        name = "x"  # trailing comment

        [tool.sim-lint]
        simulated-layers = ["sim", "faas"]
        exclude = []
        billing-modules = [
            "faas/billing.py",  # multi-line array
            "experiments/report.py",
        ]

        [tool.sim-lint.allow]
        "sim/rand.py" = ["SIM002", "SIM005"]
        """
    )
    table = parse_toml_subset(text)["tool"]["sim-lint"]
    assert table["simulated-layers"] == ["sim", "faas"]
    assert table["exclude"] == []
    assert table["billing-modules"] == ["faas/billing.py", "experiments/report.py"]
    assert table["allow"] == {"sim/rand.py": ["SIM002", "SIM005"]}
    config = config_from_table(table)
    assert config.in_simulated_layer("faas/platform.py")
    assert not config.in_simulated_layer("storage/base.py")
    assert config.allowed_rules("sim/rand.py") == ("SIM002", "SIM005")


def test_load_config_discovers_pyproject_upward(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.sim-lint]\nsimulated-layers = ["only"]\n'
    )
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    config = load_config(start=nested)
    assert config.simulated_layers == ("only",)


def test_load_config_defaults_without_table(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    config = load_config(start=tmp_path)
    assert config == SimLintConfig()


def test_exclude_fragments_skip_modules():
    config = SimLintConfig(exclude=("vendored",))
    assert config.is_excluded("sim/vendored/thing.py")
    assert not config.is_excluded("sim/core.py")


# -- engine helpers ----------------------------------------------------------


def test_module_path_strips_package_prefix(repo_paths):
    _, src_repro = repo_paths
    assert module_path(src_repro / "core" / "worker.py") == "core/worker.py"
    assert module_path(src_repro / "sim" / "core.py") == "sim/core.py"


def test_parse_suppressions_variants():
    lines = [
        "x = 1",
        "y = f()  # sim-lint: disable=SIM001",
        "z = g()  # sim-lint: disable=SIM001, SIM003 — prose after the list",
        "w = h()  # sim-lint: disable=all",
    ]
    assert parse_suppressions(lines) == {
        2: {"SIM001"},
        3: {"SIM001", "SIM003"},
        4: {"all"},
    }


def test_suppression_covers_multiline_statement_extent():
    """A comment on the opening line of a parenthesized statement must
    cover findings reported against its continuation lines (regression:
    the node's lineno is often the continuation, not the comment line)."""
    import ast

    source = textwrap.dedent(
        """
        x = build(  # sim-lint: disable=SIM001
            time.time(),
            other,
        )
        y = 1
        """
    ).strip()
    lines = source.splitlines()
    suppressed = parse_suppressions(lines, ast.parse(source))
    # lines 1-4 are the statement extent; line 5 is outside it
    assert suppressed[1] == {"SIM001"}
    assert suppressed[2] == {"SIM001"}
    assert suppressed[4] == {"SIM001"}
    assert 5 not in suppressed
    # without the tree the comment only covers its own line (old behavior)
    assert parse_suppressions(lines) == {1: {"SIM001"}}


def test_suppression_does_not_leak_over_compound_statements():
    """A comment on a def/for/with header must NOT suppress the body:
    extending over compound statements would silence far more than the
    author wrote the comment against."""
    import ast

    source = textwrap.dedent(
        """
        def f():  # sim-lint: disable=SIM001
            return time.time()
        """
    ).strip()
    lines = source.splitlines()
    suppressed = parse_suppressions(lines, ast.parse(source))
    assert suppressed == {1: {"SIM001"}}


def test_multiline_suppression_end_to_end(lint_snippet):
    """The engine applies extent-aware suppression to real findings."""
    findings = lint_snippet(
        """
        import time

        def f(build, other):
            return build(  # sim-lint: disable=SIM001 — boot wall-time, display only
                time.time(),
                other,
            )
        """
    )
    assert findings == []
    # the twin without the comment still fails, on the continuation line
    findings = lint_snippet(
        """
        import time

        def g(build, other):
            return build(
                time.time(),
                other,
            )
        """,
        filename="twin.py",
    )
    assert [f.rule for f in findings] == ["SIM001"]


def test_fingerprint_ignores_line_numbers():
    a = Finding("SIM001", "p.py", "sim/p.py", 10, 5, "m", "return time.time()")
    b = Finding("SIM001", "p.py", "sim/p.py", 99, 1, "m", "return time.time()")
    c = Finding("SIM002", "p.py", "sim/p.py", 10, 5, "m", "return time.time()")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


# -- CLI + baseline ----------------------------------------------------------


def test_cli_exits_nonzero_with_precise_location(tmp_path, capsys):
    package = write_package(tmp_path)
    assert cli_main([str(package)]) == 1
    out = capsys.readouterr().out
    assert "mod.py:5:12: SIM001" in out
    assert "sim-lint: 1 finding(s)" in out


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    package = write_package(tmp_path, source="def f(env):\n    return env.now\n")
    assert cli_main([str(package)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_json_report_and_output_file(tmp_path, capsys):
    package = write_package(tmp_path)
    report_path = tmp_path / "report.json"
    assert cli_main([str(package), "--json", "--output", str(report_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["counts"] == {"total": 1, "by_rule": {"SIM001": 1}}
    assert json.loads(report_path.read_text()) == payload


def test_cli_rules_filter(tmp_path, capsys):
    package = write_package(tmp_path)
    assert cli_main([str(package), "--rules", "SIM002"]) == 0
    capsys.readouterr()
    assert cli_main([str(package), "--rules", "SIM001"]) == 1
    capsys.readouterr()
    with pytest.raises(SystemExit):
        cli_main([str(package), "--rules", "SIM999"])


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006"):
        assert rule_id in out


def test_cli_missing_path_exits_2(tmp_path, capsys):
    assert cli_main([str(tmp_path / "nope")]) == 2


def test_baseline_grandfathers_existing_findings(tmp_path, capsys):
    package = write_package(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert cli_main([str(package), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    entries = json.loads(baseline.read_text())
    assert len(entries) == 1 and entries[0]["rule"] == "SIM001"

    # grandfathered finding no longer fails the run...
    assert cli_main([str(package), "--baseline", str(baseline)]) == 0
    assert "1 grandfathered" in capsys.readouterr().out

    # ...but a fresh violation still does
    module = package / "sim" / "mod.py"
    module.write_text(module.read_text() + "\n\ndef m():\n    return time.monotonic()\n")
    assert cli_main([str(package), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "time.monotonic" in out and "1 grandfathered" in out


def test_load_baseline_accepts_bare_fingerprints(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('["abc123", {"fingerprint": "def456"}]')
    assert load_baseline(path) == {"abc123", "def456"}
    path.write_text('{"not": "a list"}')
    with pytest.raises(ValueError):
        load_baseline(path)


def test_write_baseline_round_trip(tmp_path):
    findings = [
        Finding("SIM001", "p.py", "sim/p.py", 1, 1, "m", "time.time()"),
        Finding("SIM003", "q.py", "sim/q.py", 2, 1, "m", "for x in {1}:"),
    ]
    path = tmp_path / "b.json"
    assert write_baseline(findings, path) == 2
    assert load_baseline(path) == {f.fingerprint for f in findings}
