"""SEED1xx: project-wide seed-stream discipline over synthetic packages."""

from repro.analysis import SimLintConfig
from repro.analysis.seed_rules import SEED_RULES


def test_clean_streams_have_no_seed_findings(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                def setup(streams):
                    return streams.stream("a.events")
            """,
            "sim/b.py": """
                def setup(streams, wid):
                    return streams.stream(f"b.worker.{wid}")
            """,
        },
        rules=SEED_RULES,
    )
    assert findings == []


# -- SEED101 -----------------------------------------------------------------


def test_seed101_flags_cross_module_literal_collision(lint_project):
    findings = lint_project(
        {
            "sim/a.py": 'def f(s):\n    return s.stream("shared.name")\n',
            "faas/b.py": 'def g(s):\n    return s.stream("shared.name")\n',
        },
        rules=SEED_RULES,
    )
    assert [f.rule for f in findings] == ["SEED101", "SEED101"]
    assert {f.module for f in findings} == {"sim/a.py", "faas/b.py"}
    # each site names the other module so the fix is obvious from either end
    by_module = {f.module: f.message for f in findings}
    assert "sim/a.py" in by_module["faas/b.py"]
    assert "faas/b.py" in by_module["sim/a.py"]


def test_seed101_allows_repeats_within_one_module(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                def f(s):
                    return s.stream("a.events")

                def g(s):
                    return s.stream("a.events")
            """,
        },
        rules=SEED_RULES,
    )
    assert findings == []


def test_seed101_sees_through_placeholder_free_fstrings(lint_project):
    # an f-string with no placeholder is a constant in disguise: it both
    # collides (SEED101, on each side) and misleads (SEED102, where used)
    findings = lint_project(
        {
            "sim/a.py": 'def f(s):\n    return s.stream("x.y")\n',
            "faas/b.py": 'def g(s):\n    return s.stream(f"x.y")\n',
        },
        rules=SEED_RULES,
    )
    assert sorted(f.rule for f in findings) == ["SEED101", "SEED101", "SEED102"]


# -- SEED102 -----------------------------------------------------------------


def test_seed102_flags_fstring_without_placeholder(lint_project):
    findings = lint_project(
        {"sim/a.py": 'def f(s):\n    return s.stream(f"static.name")\n'},
        rules=SEED_RULES,
    )
    assert [f.rule for f in findings] == ["SEED102"]


def test_seed102_flags_constant_concatenation(lint_project):
    findings = lint_project(
        {"sim/a.py": 'def f(s):\n    return s.stream("static" + ".name")\n'},
        rules=SEED_RULES,
    )
    assert [f.rule for f in findings] == ["SEED102"]


def test_seed102_allows_placeholder_and_variable_concat(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                def f(s, wid):
                    a = s.stream(f"worker.{wid}")
                    b = s.stream("worker." + str(wid))
                    return a, b
            """,
        },
        rules=SEED_RULES,
    )
    assert findings == []


# -- SEED103 -----------------------------------------------------------------


def test_seed103_flags_aliased_default_rng(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                import numpy as np

                make = np.random.default_rng

                def f(seed):
                    return make(seed)
            """,
        },
        rules=SEED_RULES,
    )
    assert [f.rule for f in findings] == ["SEED103"]
    assert "default_rng" in findings[0].message


def test_seed103_flags_generator_class_construction(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                from numpy.random import Generator, PCG64

                def f(seed):
                    return Generator(PCG64(seed))
            """,
        },
        rules=SEED_RULES,
    )
    assert sorted(f.rule for f in findings) == ["SEED103", "SEED103"]


def test_seed103_leaves_direct_default_rng_to_sim002(lint_project):
    # the direct call is SIM002's finding; SEED103 must not double-report
    findings = lint_project(
        {
            "sim/a.py": """
                import numpy as np

                def f(seed):
                    return np.random.default_rng(seed)
            """,
        },
        rules=SEED_RULES,
    )
    assert findings == []


def test_seed103_direct_call_still_caught_by_sim002_in_full_run(lint_project):
    findings = lint_project(
        {
            "sim/a.py": """
                import numpy as np

                def f(seed):
                    return np.random.default_rng(seed)
            """,
        },
    )
    assert [f.rule for f in findings] == ["SIM002"]


def test_seed103_allows_construction_in_factory_modules(lint_project):
    config = SimLintConfig(seed_rng_factories=("sim/rand.py",))
    findings = lint_project(
        {
            "sim/rand.py": """
                from numpy.random import Generator, PCG64

                def child(seed):
                    return Generator(PCG64(seed))
            """,
        },
        rules=SEED_RULES,
        config=config,
    )
    assert findings == []
