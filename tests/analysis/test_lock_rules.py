"""LOCK1xx: thread-backend lock hygiene over synthetic local backends."""

from repro.analysis import SimLintConfig
from repro.analysis.lock_rules import LOCK_RULES

LOCK_CONFIG = SimLintConfig(lock_modules=("exec/local.py",))


def lint_local(lint_project, source, config=LOCK_CONFIG):
    return lint_project({"exec/local.py": source}, rules=LOCK_RULES, config=config)


def test_clean_backend_has_no_lock_findings(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def __init__(self, lock, q):
                self._lock = lock
                self._q = q

            def snapshot(self):
                with self._lock:
                    items = list(self._q.queue)
                return items

            def next_message(self):
                return self._q.get(timeout=5.0)

            def shutdown(self, thread):
                thread.join(timeout=2.0)
        """,
    )
    assert findings == []


def test_lock_rules_ignore_modules_outside_lock_set(lint_project):
    findings = lint_project(
        {"exec/other.py": "def f(q, lock):\n    with lock:\n        q.get()\n"},
        rules=LOCK_RULES,
        config=LOCK_CONFIG,
    )
    assert findings == []


# -- LOCK101 -----------------------------------------------------------------


def test_lock101_flags_direct_blocking_under_lock(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def fetch(self):
                with self._lock:
                    return self._q.get(timeout=5.0)
        """,
    )
    assert [f.rule for f in findings] == ["LOCK101"]
    assert "LocalServices._lock" in findings[0].message


def test_lock101_flags_transitive_blocking_through_helper(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def _drain_one(self):
                return self._q.get(timeout=1.0)

            def fetch(self):
                with self._lock:
                    return self._drain_one()
        """,
    )
    assert [f.rule for f in findings] == ["LOCK101"]
    assert "_drain_one" in findings[0].message
    assert "transitively" in findings[0].message


def test_lock101_blocking_after_region_is_fine(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def fetch(self):
                with self._lock:
                    wanted = self._pending.copy()
                return self._q.get(timeout=5.0)
        """,
    )
    assert findings == []


def test_lock101_dict_get_and_str_join_are_not_blocking(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def lookup(self, key):
                with self._lock:
                    name = ",".join(self._parts)
                    return self._table.get(key, name)
        """,
    )
    assert findings == []


# -- LOCK102 -----------------------------------------------------------------


def test_lock102_flags_abba_cycle(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def publish(self):
                with self._topics_lock:
                    with self._queues_lock:
                        pass

            def unbind(self):
                with self._queues_lock:
                    with self._topics_lock:
                        pass
        """,
    )
    assert [f.rule for f in findings] == ["LOCK102"]
    assert "_topics_lock -> " in findings[0].message


def test_lock102_consistent_order_is_fine(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def publish(self):
                with self._topics_lock:
                    with self._queues_lock:
                        pass

            def unbind(self):
                with self._topics_lock:
                    with self._queues_lock:
                        pass
        """,
    )
    assert findings == []


def test_lock102_cycle_through_helper_call(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def _bump(self):
                with self._stats_lock:
                    pass

            def publish(self):
                with self._queues_lock:
                    self._bump()

            def report(self):
                with self._stats_lock:
                    with self._queues_lock:
                        pass
        """,
    )
    assert [f.rule for f in findings] == ["LOCK102"]


def test_lock102_reentrant_double_acquire_is_a_self_cycle(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def fetch(self):
                with self._lock:
                    with self._lock:
                        pass
        """,
    )
    assert [f.rule for f in findings] == ["LOCK102"]


# -- LOCK103 -----------------------------------------------------------------


def test_lock103_flags_unbounded_get_join_wait(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def run(self, thread, event):
                item = self._q.get()
                thread.join()
                event.wait()
                return item
        """,
    )
    assert [f.rule for f in findings] == ["LOCK103", "LOCK103", "LOCK103"]
    labels = sorted(f.message.split("`")[3] for f in findings)
    assert labels == ["get(...)", "join(...)", "wait(...)"]


def test_lock103_timeout_kwarg_bounds_the_call(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def run(self, thread, event):
                item = self._q.get(timeout=5.0)
                thread.join(timeout=1.0)
                event.wait(timeout=0.5)
                return item
        """,
    )
    assert findings == []


def test_lock103_explicit_none_timeout_is_still_unbounded(lint_project):
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def run(self):
                return self._q.get(timeout=None)
        """,
    )
    assert [f.rule for f in findings] == ["LOCK103"]


def test_lock103_sanctioned_helper_may_block_forever(lint_project):
    config = SimLintConfig(
        lock_modules=("exec/local.py",),
        lock_sanctioned=("LocalServices.park",),
    )
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def park(self, event):
                event.wait()
        """,
        config=config,
    )
    assert findings == []


def test_lock103_consume_calls_are_internally_bounded(lint_project):
    # mq consume goes through the deadline-bounded service helper: never
    # LOCK103 — but still blocking, so LOCK101 fires under a lock
    findings = lint_local(
        lint_project,
        """
        class LocalServices:
            def pull(self):
                return self._mq.consume("q")

            def bad_pull(self):
                with self._lock:
                    return self._mq.consume("q")
        """,
    )
    assert [f.rule for f in findings] == ["LOCK101"]
