"""The runtime half: monitor tracing and the trace-divergence oracle."""

import pytest

from repro.analysis.determinism import (
    Divergence,
    check_determinism,
    first_divergence,
    main as oracle_main,
)
from repro.sim import Monitor


# -- Monitor trace hook ------------------------------------------------------


def test_monitor_trace_off_by_default():
    monitor = Monitor()
    monitor.record("loss", 1.0, 0.5)
    assert not monitor.tracing
    assert monitor.trace == ()


def test_monitor_trace_records_in_call_order():
    monitor = Monitor(trace=True)
    monitor.record("loss", 1.0, 0.5)
    monitor.record("workers", 1.0, 4.0)
    monitor.record("loss", 2.0, 0.4)
    assert monitor.trace == (
        (0, "loss", 1.0, 0.5),
        (1, "workers", 1.0, 4.0),
        (2, "loss", 2.0, 0.4),
    )


def test_trace_digest_is_bit_exact():
    a, b = Monitor(trace=True), Monitor(trace=True)
    for monitor in (a, b):
        monitor.record("loss", 1.0, 0.1 + 0.2)
    assert a.trace_digest() == b.trace_digest()
    c = Monitor(trace=True)
    c.record("loss", 1.0, 0.3)  # 0.1 + 0.2 != 0.3 in the last ulp
    assert a.trace_digest() != c.trace_digest()


def test_enable_trace_is_idempotent():
    monitor = Monitor()
    monitor.enable_trace()
    monitor.record("x", 0.0, 1.0)
    monitor.enable_trace()
    assert len(monitor.trace) == 1


# -- divergence search -------------------------------------------------------


def test_first_divergence_pinpoints_index():
    a = [(0, "loss", 0.0, 1.0), (1, "loss", 1.0, 0.9)]
    b = [(0, "loss", 0.0, 1.0), (1, "loss", 1.0, 0.8)]
    divergence = first_divergence(a, b)
    assert divergence == Divergence(index=1, expected=a[1], actual=b[1])
    assert "event 1" in divergence.describe()


def test_first_divergence_handles_truncated_trace():
    a = [(0, "loss", 0.0, 1.0), (1, "loss", 1.0, 0.9)]
    divergence = first_divergence(a, a[:1])
    assert divergence.index == 1
    assert divergence.actual is None and divergence.expected == a[1]
    assert first_divergence(a, list(a)) is None


# -- the oracle itself -------------------------------------------------------


def fake_run(records):
    def run(seed):
        monitor = Monitor(trace=True)
        for name, time, value in records:
            monitor.record(name, time, value)
        return monitor

    return run


def test_oracle_passes_identical_runs():
    report = check_determinism(
        seed=3, run_fn=fake_run([("loss", 0.0, 1.0), ("loss", 1.0, 0.5)])
    )
    assert report.ok
    assert report.n_events == 2
    assert len(set(report.digests)) == 1


def test_oracle_flags_injected_wall_clock_read():
    """A host-clock sample leaked into the second run must be pinpointed."""
    import time

    calls = {"n": 0}

    def run(seed):
        monitor = Monitor(trace=True)
        monitor.record("loss", 0.0, 1.0)
        calls["n"] += 1
        if calls["n"] == 2:
            monitor.record("loss", 1.0, time.perf_counter())
        else:
            monitor.record("loss", 1.0, 0.5)
        return monitor

    report = check_determinism(seed=0, run_fn=run)
    assert not report.ok
    assert report.divergence is not None
    assert report.divergence.index == 1
    assert report.digests[0] != report.digests[1]


def test_oracle_requires_two_runs():
    with pytest.raises(ValueError):
        check_determinism(runs=1, run_fn=fake_run([]))


@pytest.mark.slow
def test_default_training_run_is_deterministic():
    """Two full (small) MLLess training runs hash identically."""
    report = check_determinism(seed=0)
    assert report.ok, report.divergence and report.divergence.describe()
    assert report.n_events > 10


@pytest.mark.slow
def test_oracle_cli_self_test_fails_on_wallclock_injection(capsys):
    assert oracle_main(["--inject-wallclock"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "wallclock_leak" in out


@pytest.mark.slow
def test_oracle_cli_json_clean(capsys):
    import json

    assert oracle_main(["--json", "--seed", "5"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True and payload["runs"] == 2
