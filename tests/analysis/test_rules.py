"""Per-rule fixture tests: one failing and one passing snippet each,
plus suppression-comment and allowlist behaviour."""

from repro.analysis import SimLintConfig


def rule_ids(findings):
    return [f.rule for f in findings]


# -- SIM001: wall-clock ban ------------------------------------------------


def test_sim001_flags_wall_clock_read(lint_snippet):
    findings = lint_snippet(
        """
        import time

        def latency():
            return time.time()
        """
    )
    assert rule_ids(findings) == ["SIM001"]
    assert "time.time" in findings[0].message


def test_sim001_flags_aliased_from_import(lint_snippet):
    findings = lint_snippet(
        """
        from time import perf_counter as clock

        def latency():
            return clock()
        """
    )
    assert rule_ids(findings) == ["SIM001"]


def test_sim001_passes_sim_clock_and_non_sim_layers(lint_snippet):
    assert (
        lint_snippet(
            """
            def latency(env):
                return env.now
            """
        )
        == []
    )
    # wall-clock is fine outside the simulated layers (e.g. experiment timers)
    assert (
        lint_snippet(
            """
            import time

            def stopwatch():
                return time.time()
            """,
            layer="experiments",
        )
        == []
    )


# -- SIM002: global RNG ban ------------------------------------------------


def test_sim002_flags_stdlib_and_numpy_global_rng(lint_snippet):
    findings = lint_snippet(
        """
        import random
        import numpy as np

        def draw():
            a = random.random()
            b = np.random.rand(3)
            return a, b
        """
    )
    assert rule_ids(findings) == ["SIM002", "SIM002"]


def test_sim002_flags_default_rng_outside_factories(lint_snippet):
    findings = lint_snippet(
        """
        import numpy as np

        def make():
            return np.random.default_rng(42)
        """
    )
    assert rule_ids(findings) == ["SIM002"]


def test_sim002_applies_outside_simulated_layers_too(lint_snippet):
    findings = lint_snippet(
        """
        import random

        def shuffle(xs):
            random.shuffle(xs)
        """,
        layer="experiments",
    )
    assert rule_ids(findings) == ["SIM002"]


def test_sim002_passes_stream_draws_and_seed_plumbing(lint_snippet):
    findings = lint_snippet(
        """
        import numpy as np

        def jitter(rng: np.random.Generator, streams):
            seq = np.random.SeedSequence([1, 2])
            return rng.normal() + streams.stream("net").uniform(), seq
        """
    )
    assert findings == []


def test_sim002_module_allowlist(lint_snippet):
    config = SimLintConfig(allow={"sim/mod.py": ("SIM002",)})
    findings = lint_snippet(
        """
        import numpy as np

        def make():
            return np.random.default_rng(42)
        """,
        config=config,
    )
    assert findings == []


# -- SIM003: unordered iteration -------------------------------------------


def test_sim003_flags_set_literal_call_and_comprehension(lint_snippet):
    findings = lint_snippet(
        """
        def schedule(items):
            for x in {1, 2, 3}:
                pass
            for y in set(items):
                pass
            return [z for z in {i % 4 for i in items}]
        """
    )
    assert rule_ids(findings) == ["SIM003", "SIM003", "SIM003"]


def test_sim003_flags_local_set_variable_and_set_ops(lint_snippet):
    findings = lint_snippet(
        """
        def schedule(items, done):
            pending = set(items)
            for x in pending:
                pass
            return [y for y in pending - set(done)]
        """
    )
    assert rule_ids(findings) == ["SIM003", "SIM003"]


def test_sim003_flags_attribute_annotated_as_set(lint_snippet):
    findings = lint_snippet(
        """
        from typing import Set

        class State:
            def __init__(self):
                self.active: Set[int] = set()

        def pick(state):
            return [w for w in state.active]
        """
    )
    assert rule_ids(findings) == ["SIM003"]


def test_sim003_passes_sorted_lists_and_dicts(lint_snippet):
    findings = lint_snippet(
        """
        def schedule(items, mapping):
            for x in sorted(set(items)):
                pass
            for key in mapping:
                pass
            for value in mapping.values():
                pass
        """
    )
    assert findings == []


def test_sim003_not_enforced_outside_simulated_layers(lint_snippet):
    findings = lint_snippet(
        """
        def tabulate(items):
            return [x for x in set(items)]
        """,
        layer="experiments",
    )
    assert findings == []


# -- SIM004: float equality in billing modules ------------------------------


def test_sim004_flags_float_comparisons(lint_snippet):
    config = SimLintConfig(billing_modules=("billing/mod.py",))
    findings = lint_snippet(
        """
        def price(cost, quanta):
            if cost == 1.5:
                return 0
            if quanta / 10 != 3:
                return 1
        """,
        layer="billing",
        config=config,
    )
    assert rule_ids(findings) == ["SIM004", "SIM004"]


def test_sim004_flags_float_identifier_vs_int_literal(lint_snippet):
    config = SimLintConfig(billing_modules=("billing/mod.py",))
    findings = lint_snippet(
        """
        def fmt(value):
            if value == 0:
                return "0"
        """,
        layer="billing",
        config=config,
    )
    assert rule_ids(findings) == ["SIM004"]


def test_sim004_passes_integral_comparisons_and_other_modules(lint_snippet):
    config = SimLintConfig(billing_modules=("billing/mod.py",))
    assert (
        lint_snippet(
            """
            def check(xs, ys, n):
                if len(xs) != len(ys):
                    raise ValueError
                return n == 0
            """,
            layer="billing",
            config=config,
        )
        == []
    )
    # same float comparison outside the billing scope: not this rule's business
    assert (
        lint_snippet(
            """
            def near(cost):
                return cost == 1.5
            """,
            layer="experiments",
            config=config,
        )
        == []
    )


# -- SIM005: host I/O / environment ------------------------------------------


def test_sim005_flags_io_and_environment(lint_snippet):
    findings = lint_snippet(
        """
        import os

        def load(path):
            print("loading")
            data = open(path).read()
            return data, os.environ["HOME"], os.getenv("SEED")
        """
    )
    assert rule_ids(findings) == ["SIM005", "SIM005", "SIM005", "SIM005"]


def test_sim005_passes_cli_layer(lint_snippet):
    findings = lint_snippet(
        """
        import os

        def report(path):
            print("done")
            return open(path).read(), os.getenv("SEED")
        """,
        layer="experiments",
    )
    assert findings == []


# -- SIM006: heap tie-breaker -----------------------------------------------


def test_sim006_flags_push_without_tiebreaker(lint_snippet):
    findings = lint_snippet(
        """
        import heapq

        def schedule(queue, when, event):
            heapq.heappush(queue, (when, event))
            heapq.heappush(queue, event)
        """
    )
    assert rule_ids(findings) == ["SIM006", "SIM006"]


def test_sim006_passes_time_seq_event_tuple(lint_snippet):
    findings = lint_snippet(
        """
        import heapq
        from heapq import heappush

        def schedule(queue, now, seq, event):
            heapq.heappush(queue, (now, seq, event))
            heappush(queue, (now + 1.0, seq + 1, event))
        """
    )
    assert findings == []


# -- suppression comments -----------------------------------------------------


def test_line_suppression_disables_one_rule(lint_snippet):
    findings = lint_snippet(
        """
        import time

        def latency():
            return time.time()  # sim-lint: disable=SIM001 — calibration shim
        """
    )
    assert findings == []


def test_line_suppression_is_rule_specific(lint_snippet):
    findings = lint_snippet(
        """
        import time

        def latency():
            return time.time()  # sim-lint: disable=SIM002
        """
    )
    assert rule_ids(findings) == ["SIM001"]


def test_line_suppression_all(lint_snippet):
    findings = lint_snippet(
        """
        import time

        def latency():
            return time.time()  # sim-lint: disable=all
        """
    )
    assert findings == []


# -- degenerate input ---------------------------------------------------------


def test_syntax_error_becomes_sim000(lint_snippet):
    findings = lint_snippet("def broken(:\n    pass\n")
    assert rule_ids(findings) == ["SIM000"]
    assert "does not parse" in findings[0].message
