"""The gate: the real source tree must be sim-lint clean, with an empty
baseline, and stay that way."""

import json

from repro.analysis import analyze_paths, load_config


def test_src_repro_is_clean(repo_paths):
    root, src_repro = repo_paths
    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([src_repro], config=config)
    details = "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in findings)
    assert findings == [], f"sim-lint findings in src/repro:\n{details}"


def test_committed_baseline_is_empty(repo_paths):
    root, _ = repo_paths
    baseline = root / "analysis-baseline.json"
    assert baseline.is_file(), "analysis-baseline.json must exist for CI"
    assert json.loads(baseline.read_text()) == [], (
        "the committed baseline must stay empty: fix or explicitly suppress "
        "findings instead of grandfathering them"
    )


def test_an_injected_violation_is_caught(repo_paths, tmp_path):
    """End-to-end: a wall-clock read dropped into a simulated layer fails.

    Copies one real kernel module into a synthetic package, injects a
    ``time.time()`` call, and asserts the analyzer reports it with a
    precise location — the acceptance criterion for the static half.
    """
    root, src_repro = repo_paths
    package = tmp_path / "pkg"
    (package / "sim").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "sim" / "__init__.py").write_text("")
    source = (src_repro / "sim" / "core.py").read_text()
    source = source.replace(
        "def peek(self) -> float:",
        "def peek(self) -> float:\n        import time\n        _ = time.time()",
        1,
    )
    (package / "sim" / "core.py").write_text(source)
    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([package], config=config)
    assert [f.rule for f in findings] == ["SIM001"]
    assert findings[0].module == "sim/core.py"
    assert findings[0].line > 0 and "time.time" in findings[0].message
