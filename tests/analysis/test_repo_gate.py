"""The gate: the real source tree must be sim-lint clean, with an empty
baseline, and stay that way."""

import ast
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, load_config


def test_src_repro_is_clean(repo_paths):
    root, src_repro = repo_paths
    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([src_repro], config=config)
    details = "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in findings)
    assert findings == [], f"sim-lint findings in src/repro:\n{details}"


def test_committed_baseline_is_empty(repo_paths):
    root, _ = repo_paths
    baseline = root / "analysis-baseline.json"
    assert baseline.is_file(), "analysis-baseline.json must exist for CI"
    assert json.loads(baseline.read_text()) == [], (
        "the committed baseline must stay empty: fix or explicitly suppress "
        "findings instead of grandfathering them"
    )


def test_an_injected_violation_is_caught(repo_paths, tmp_path):
    """End-to-end: a wall-clock read dropped into a simulated layer fails.

    Copies one real kernel module into a synthetic package, injects a
    ``time.time()`` call, and asserts the analyzer reports it with a
    precise location — the acceptance criterion for the static half.
    """
    root, src_repro = repo_paths
    package = tmp_path / "pkg"
    (package / "sim").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "sim" / "__init__.py").write_text("")
    source = (src_repro / "sim" / "core.py").read_text()
    source = source.replace(
        "def peek(self) -> float:",
        "def peek(self) -> float:\n        import time\n        _ = time.time()",
        1,
    )
    (package / "sim" / "core.py").write_text(source)
    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([package], config=config)
    assert [f.rule for f in findings] == ["SIM001"]
    assert findings[0].module == "sim/core.py"
    assert findings[0].line > 0 and "time.time" in findings[0].message


def _copy_subtree(src_repro, package, subdirs):
    """Copy real source subpackages into a synthetic package root."""
    package.mkdir(parents=True, exist_ok=True)
    (package / "__init__.py").write_text("")
    for subdir in subdirs:
        shutil.copytree(src_repro / subdir, package / subdir)
    return package


def _services_method_names():
    """The Services protocol surface, read from the real tree at collection."""
    protocols = Path(__file__).resolve().parents[2] / "src/repro/exec/protocols.py"
    tree = ast.parse(protocols.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Services":
            return [
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef) and not item.name.startswith("_")
            ]
    raise AssertionError("Services protocol class not found")


@pytest.mark.parametrize("method", _services_method_names())
def test_deleting_any_services_method_fails_conformance(repo_paths, tmp_path, method):
    """The EXEC103 acceptance criterion: remove any one Services method
    from the local backend and the conformance lint must fail."""
    root, src_repro = repo_paths
    package = _copy_subtree(src_repro, tmp_path / "pkg", ["exec"])
    local = package / "exec" / "local.py"
    source = local.read_text()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "LocalServices":
            target = next(
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == method
            )
            break
    else:
        raise AssertionError("LocalServices not found")
    lines = source.splitlines(keepends=True)
    del lines[target.lineno - 1 : target.end_lineno]
    local.write_text("".join(lines))

    config = load_config(pyproject=root / "pyproject.toml")
    findings = analyze_paths([package], config=config)
    conformance = [f for f in findings if f.rule == "EXEC103"]
    assert [f.snippet for f in conformance] == [f"LocalServices.{method} (missing)"]


def test_injected_cross_module_violations_are_caught(repo_paths, tmp_path):
    """End-to-end on the real tree: one injected violation per new family."""
    root, src_repro = repo_paths
    package = _copy_subtree(src_repro, tmp_path / "pkg", ["exec", "core", "sim", "trace", "storage"])

    # EXEC101/EXEC102: couple a machine module to threading, add a bare yield
    worker = package / "core" / "worker.py"
    source = worker.read_text()
    assert "yield sv.mq_publish(runtime.supervisor_queue, report)" in source
    source = source.replace(
        "yield sv.mq_publish(runtime.supervisor_queue, report)",
        "yield 42\n        yield sv.mq_publish(runtime.supervisor_queue, report)",
        1,
    )
    worker.write_text("import threading  # noqa: F401\n" + source)

    # LOCK101/LOCK103: block while holding a lock in the local backend
    local = package / "exec" / "local.py"
    local.write_text(
        local.read_text()
        + "\n\ndef _stall(q, state_lock):\n    with state_lock:\n        return q.get()\n"
    )

    config = load_config(pyproject=root / "pyproject.toml")
    rules = {f.rule for f in analyze_paths([package], config=config)}
    assert {"EXEC101", "EXEC102", "LOCK101", "LOCK103"} <= rules
