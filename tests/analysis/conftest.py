"""Fixture helpers: materialise snippet packages and lint them."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import SimLintConfig, analyze_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Write ``source`` into a synthetic package and run the analyzer.

    The snippet is placed at ``pkg/<layer>/<filename>`` with the
    ``__init__.py`` chain the module-path normaliser expects, so the
    default layer scoping (``sim``, ``faas``, ...) applies exactly as it
    does to the real tree.
    """

    def _lint(source, layer="sim", filename="mod.py", config=None, rules=None):
        package = tmp_path / "pkg"
        module_dir = package / layer if layer else package
        module_dir.mkdir(parents=True, exist_ok=True)
        (package / "__init__.py").write_text("")
        current = module_dir
        while current != package:
            (current / "__init__.py").write_text("")
            current = current.parent
        (module_dir / filename).write_text(textwrap.dedent(source))
        return analyze_paths(
            [package], config=config or SimLintConfig(), rules=rules
        )

    return _lint


@pytest.fixture
def lint_project(tmp_path):
    """Materialise a multi-file package from ``{relpath: source}`` and lint it.

    The cross-module rule families only see what the collect phase sees,
    so their tests need several files in one scan.  Every parent
    directory gets an ``__init__.py`` so module paths normalise exactly
    as in the real tree (``core/worker.py`` etc.).
    """

    def _lint(files, config=None, rules=None):
        package = tmp_path / "pkg"
        package.mkdir(exist_ok=True)
        (package / "__init__.py").write_text("")
        for relpath, source in files.items():
            target = package / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            current = target.parent
            while current != package:
                init = current / "__init__.py"
                if not init.exists():
                    init.write_text("")
                current = current.parent
            target.write_text(textwrap.dedent(source))
        return analyze_paths(
            [package], config=config or SimLintConfig(), rules=rules
        )

    return _lint


@pytest.fixture(scope="session")
def repo_paths():
    """(repo root, src/repro) resolved from this test file's location."""
    root = Path(__file__).resolve().parents[2]
    return root, root / "src" / "repro"
