"""Fingerprint stability: the property the baseline workflow relies on.

A baseline entry must keep matching its finding while unrelated edits
shift the file around (line/column independence), and must stop matching
the moment the violation itself changes (rule, module, or source text).
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Finding, load_baseline, write_baseline
from repro.analysis.baseline import split_by_baseline

RULE_IDS = st.sampled_from(
    ["SIM001", "SIM002", "EXEC101", "EXEC103", "SEED101", "LOCK102"]
)
MODULES = st.sampled_from(
    ["sim/core.py", "core/worker.py", "exec/local.py", "platform/jobs.py"]
)
SNIPPETS = st.text(min_size=1, max_size=80)
POSITIONS = st.integers(min_value=1, max_value=10_000)


def make_finding(rule, module, snippet, line, col):
    return Finding(
        rule=rule,
        path=f"src/repro/{module}",
        module=module,
        line=line,
        col=col,
        message="m",
        snippet=snippet,
    )


@given(RULE_IDS, MODULES, SNIPPETS, POSITIONS, POSITIONS, POSITIONS, POSITIONS)
def test_fingerprint_invariant_under_line_and_column_shifts(
    rule, module, snippet, line_a, col_a, line_b, col_b
):
    a = make_finding(rule, module, snippet, line_a, col_a)
    b = make_finding(rule, module, snippet, line_b, col_b)
    assert a.fingerprint == b.fingerprint


@given(RULE_IDS, RULE_IDS, MODULES, SNIPPETS, POSITIONS)
def test_fingerprint_changes_with_rule(rule_a, rule_b, module, snippet, line):
    a = make_finding(rule_a, module, snippet, line, 1)
    b = make_finding(rule_b, module, snippet, line, 1)
    assert (a.fingerprint == b.fingerprint) == (rule_a == rule_b)


@given(RULE_IDS, MODULES, MODULES, SNIPPETS, POSITIONS)
def test_fingerprint_changes_with_module(rule, module_a, module_b, snippet, line):
    a = make_finding(rule, module_a, snippet, line, 1)
    b = make_finding(rule, module_b, snippet, line, 1)
    assert (a.fingerprint == b.fingerprint) == (module_a == module_b)


@given(RULE_IDS, MODULES, SNIPPETS, SNIPPETS, POSITIONS)
def test_fingerprint_changes_with_snippet(rule, module, snippet_a, snippet_b, line):
    a = make_finding(rule, module, snippet_a, line, 1)
    b = make_finding(rule, module, snippet_b, line, 1)
    assert (a.fingerprint == b.fingerprint) == (snippet_a == snippet_b)


@given(
    st.lists(
        st.tuples(RULE_IDS, MODULES, SNIPPETS, POSITIONS, POSITIONS),
        max_size=8,
        unique_by=lambda t: (t[0], t[1], t[2]),
    ),
    POSITIONS,
)
def test_baseline_round_trip_grandfathers_shifted_findings(tmp_path_factory, entries, shift):
    """write_baseline → load_baseline → split: every finding that only
    moved (line shift) stays grandfathered; nothing new leaks through."""
    tmp_path = tmp_path_factory.mktemp("baseline")
    findings = [make_finding(*entry) for entry in entries]
    path = tmp_path / "baseline.json"
    assert write_baseline(findings, path) == len(findings)
    fingerprints = load_baseline(path)
    shifted = [
        make_finding(f.rule, f.module, f.snippet, f.line + shift, f.col)
        for f in findings
    ]
    fresh, grandfathered = split_by_baseline(shifted, fingerprints)
    assert fresh == []
    assert len(grandfathered) == len(findings)
    # the file on disk is plain JSON a reviewer can read
    assert isinstance(json.loads(path.read_text()), list)
