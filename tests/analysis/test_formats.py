"""Report renderers: github annotations and SARIF, plus CLI wiring."""

import json

import pytest

from repro.analysis import Finding
from repro.analysis.cli import main as cli_main
from repro.analysis.formats import render, render_github, render_sarif

FINDINGS = [
    Finding(
        rule="SIM001",
        path="src/repro/sim/mod.py",
        module="sim/mod.py",
        line=5,
        col=12,
        message="wall-clock read: time.time()",
        snippet="return time.time()",
    ),
    Finding(
        rule="EXEC102",
        path="src/repro/core/worker.py",
        module="core/worker.py",
        line=9,
        col=5,
        message="yields a non-protocol value\nsecond line, with % and ::",
        snippet="yield 42",
    ),
]


def write_bad_package(tmp_path):
    package = tmp_path / "pkg"
    (package / "sim").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "sim" / "__init__.py").write_text("")
    (package / "sim" / "mod.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    return package


# -- github ------------------------------------------------------------------


def test_github_format_emits_one_error_command_per_finding():
    out = render_github(FINDINGS, [])
    lines = out.splitlines()
    assert lines[0] == (
        "::error file=src/repro/sim/mod.py,line=5,col=12,"
        "title=SIM001::SIM001: wall-clock read: time.time()"
    )
    assert lines[-1] == "sim-lint: 2 finding(s)"


def test_github_format_escapes_newlines_in_messages():
    out = render_github(FINDINGS, [])
    # workflow commands are single-line by contract
    assert all(line.startswith(("::error", "sim-lint:")) for line in out.splitlines())
    assert "%0A" in out and "%25" in out


def test_github_format_reports_grandfathered_in_summary():
    out = render_github([], FINDINGS)
    assert out == "sim-lint: 0 finding(s), 2 grandfathered by baseline"


# -- sarif -------------------------------------------------------------------


def test_sarif_log_shape_and_fingerprints():
    log = json.loads(render_sarif(FINDINGS, []))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "sim-lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["EXEC102", "SIM001"]
    assert len(run["results"]) == 2
    result = run["results"][0]
    assert result["ruleId"] == "SIM001"
    assert run["tool"]["driver"]["rules"][result["ruleIndex"]]["id"] == "SIM001"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/sim/mod.py"
    assert loc["region"] == {
        "startLine": 5,
        "startColumn": 12,
        "snippet": {"text": "return time.time()"},
    }
    assert result["partialFingerprints"] == {
        "simLintFingerprint/v1": FINDINGS[0].fingerprint
    }


def test_sarif_empty_run_is_valid_and_counts_grandfathered():
    log = json.loads(render_sarif([], FINDINGS))
    run = log["runs"][0]
    assert run["results"] == []
    assert run["properties"]["grandfathered"] == 2


def test_render_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown format"):
        render("yaml", [], [])


# -- CLI wiring --------------------------------------------------------------


def test_cli_format_github(tmp_path, capsys):
    package = write_bad_package(tmp_path)
    assert cli_main([str(package), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out and "title=SIM001" in out


def test_cli_format_sarif_to_output_file(tmp_path, capsys):
    package = write_bad_package(tmp_path)
    sarif_path = tmp_path / "sim-lint.sarif"
    assert cli_main(
        [str(package), "--format", "sarif", "--output", str(sarif_path)]
    ) == 1
    log = json.loads(sarif_path.read_text())
    assert log["runs"][0]["results"][0]["ruleId"] == "SIM001"
    assert json.loads(capsys.readouterr().out) == log


def test_cli_json_flag_still_works_as_shorthand(tmp_path, capsys):
    package = write_bad_package(tmp_path)
    assert cli_main([str(package), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["by_rule"] == {"SIM001": 1}
