"""EXEC1xx: backend-neutrality rules over a synthetic multi-module package."""

from repro.analysis import SimLintConfig
from repro.analysis.exec_rules import EXEC_RULES

PROTOCOLS = """
    class Services:
        def kv_get(self, key): ...
        def kv_set(self, key, value): ...
        def mq_publish(self, topic, payload): ...
        def sleep(self, seconds): ...
"""

SIM_BACKEND = """
    class SimServices:
        def kv_get(self, key): ...
        def kv_set(self, key, value): ...
        def mq_publish(self, topic, payload): ...
        def sleep(self, seconds): ...
"""

LOCAL_BACKEND = """
    class LocalServices:
        def kv_get(self, key): ...
        def kv_set(self, key, value): ...
        def mq_publish(self, topic, payload): ...
        def sleep(self, seconds): ...
"""

CLEAN_MACHINE = """
    def worker(sv, wid) -> "Machine":
        value = yield sv.kv_get(f"grad.{wid}")
        yield sv.mq_publish("updates", value)
        yield from _drain(sv)
        return value

    def _drain(sv) -> "Machine":
        yield sv.sleep(0.5)
"""


def base_files():
    return {
        "exec/protocols.py": PROTOCOLS,
        "exec/sim.py": SIM_BACKEND,
        "exec/local.py": LOCAL_BACKEND,
        "core/worker.py": CLEAN_MACHINE,
    }


def test_clean_package_has_no_exec_findings(lint_project):
    assert lint_project(base_files(), rules=EXEC_RULES) == []


# -- EXEC101 -----------------------------------------------------------------


def test_exec101_flags_banned_import_in_machine_module(lint_project):
    files = base_files()
    files["core/worker.py"] = "\n    import threading\n" + files["core/worker.py"]
    findings = lint_project(files, rules=EXEC_RULES)
    assert [f.rule for f in findings] == ["EXEC101"]
    assert findings[0].module == "core/worker.py"
    assert "threading" in findings[0].message


def test_exec101_flags_relative_backend_import(lint_project):
    files = base_files()
    files["core/worker.py"] = (
        "\n    from ..exec.sim import SimServices\n" + files["core/worker.py"]
    )
    findings = lint_project(files, rules=EXEC_RULES)
    assert [f.rule for f in findings] == ["EXEC101"]
    assert "exec.sim" in findings[0].message


def test_exec101_ignores_modules_without_machines(lint_project):
    files = base_files()
    # a driver module may import anything: it hosts no machines
    files["core/driver.py"] = """
        import threading
        from ..exec.sim import SimServices
    """
    assert lint_project(files, rules=EXEC_RULES) == []


def test_exec101_config_forces_module_into_machine_set(lint_project):
    files = base_files()
    files["core/driver.py"] = "import threading\n"
    config = SimLintConfig(exec_machine_modules=("core/driver.py",))
    findings = lint_project(files, rules=EXEC_RULES, config=config)
    assert [f.rule for f in findings] == ["EXEC101"]
    assert findings[0].module == "core/driver.py"


def test_exec101_protocols_import_is_allowed(lint_project):
    files = base_files()
    files["core/worker.py"] = (
        "\n    from ..exec.protocols import Services\n" + files["core/worker.py"]
    )
    assert lint_project(files, rules=EXEC_RULES) == []


# -- EXEC102 -----------------------------------------------------------------


def test_exec102_flags_bare_value_yield(lint_project):
    files = base_files()
    files["core/worker.py"] = """
        def worker(sv, wid) -> "Machine":
            yield sv.kv_get("x")
            yield 42
    """
    findings = lint_project(files, rules=EXEC_RULES)
    assert [f.rule for f in findings] == ["EXEC102"]
    assert "non-protocol value" in findings[0].message


def test_exec102_flags_bare_yield_and_non_call_yield_from(lint_project):
    files = base_files()
    files["core/worker.py"] = """
        def worker(sv, gen) -> "Machine":
            yield
            yield from gen
    """
    findings = lint_project(files, rules=EXEC_RULES)
    assert sorted(f.rule for f in findings) == ["EXEC102", "EXEC102"]
    messages = " | ".join(f.message for f in findings)
    assert "bare `yield`" in messages and "yield from" in messages


def test_exec102_ignores_yields_in_nested_defs(lint_project):
    files = base_files()
    # the nested helper is not itself a machine; its yields are its own
    files["core/worker.py"] = """
        def worker(sv) -> "Machine":
            def local_gen():
                yield 1
                yield 2
            yield sv.mq_publish("t", list(local_gen()))
    """
    assert lint_project(files, rules=EXEC_RULES) == []


def test_exec102_skips_when_protocols_module_not_scanned(lint_project):
    files = {"core/worker.py": "def worker(sv) -> 'Machine':\n    yield 42\n"}
    findings = lint_project(files, rules=EXEC_RULES)
    assert [f.rule for f in findings] == []


# -- EXEC103 -----------------------------------------------------------------


def test_exec103_flags_each_missing_backend_method(lint_project):
    files = base_files()
    files["exec/local.py"] = """
        class LocalServices:
            def kv_get(self, key): ...
            def kv_set(self, key, value): ...
    """
    findings = lint_project(files, rules=EXEC_RULES)
    assert [f.rule for f in findings] == ["EXEC103", "EXEC103"]
    missing = {f.snippet for f in findings}
    assert missing == {
        "LocalServices.mq_publish (missing)",
        "LocalServices.sleep (missing)",
    }
    # per-method snippets keep the baseline fingerprints distinct
    assert len({f.fingerprint for f in findings}) == 2


def test_exec103_flags_missing_backend_class(lint_project):
    files = base_files()
    files["exec/local.py"] = "class RenamedServices:\n    pass\n"
    findings = lint_project(files, rules=EXEC_RULES)
    assert any(
        f.rule == "EXEC103" and "does not exist" in f.message for f in findings
    )


def test_exec103_skips_backends_outside_the_scan(lint_project):
    files = base_files()
    del files["exec/local.py"]
    assert lint_project(files, rules=EXEC_RULES) == []


def test_exec_suppression_comment_silences_finding(lint_project):
    files = base_files()
    files["core/worker.py"] = """
        def worker(sv) -> "Machine":
            yield 42  # sim-lint: disable=EXEC102 — handshake token, both backends ignore it
    """
    assert lint_project(files, rules=EXEC_RULES) == []
