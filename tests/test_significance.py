"""Unit tests for the ISP significance filter (§4.1)."""

import numpy as np
import pytest

from repro.core import SignificanceFilter, threshold_at
from repro.ml import ModelUpdate, ParameterSet
from repro.ml.sparse import SparseDelta


def params_with(w):
    return ParameterSet({"w": np.asarray(w, dtype=np.float64)})


def update_with(indices, values, size=4):
    return ModelUpdate(
        {"w": SparseDelta(np.asarray(indices), np.asarray(values, float), (size,))}
    )


# ---------------------------------------------------------------- threshold
def test_threshold_decays_as_inverse_sqrt():
    assert threshold_at(0.7, 1) == 0.7
    assert threshold_at(0.7, 4) == pytest.approx(0.35)
    assert threshold_at(0.7, 49) == pytest.approx(0.1)


def test_threshold_validates():
    with pytest.raises(ValueError):
        threshold_at(-0.1, 1)
    with pytest.raises(ValueError):
        threshold_at(0.5, 0)


# ------------------------------------------------------------------- filter
def test_v_zero_extracts_every_touched_entry():
    filt = SignificanceFilter(0.0, {"w": (4,)})
    p = params_with([1.0, 1.0, 1.0, 1.0])
    out = filt.step(p, update_with([0, 2], [0.001, -0.001]), t=1)
    assert set(out["w"].indices) == {0, 2}
    # Accumulators fully drained: ISP with v=0 is BSP.
    assert np.all(filt.accumulated["w"] == 0)


def test_significant_entries_extracted_insignificant_accumulated():
    filt = SignificanceFilter(0.5, {"w": (4,)})
    p = params_with([1.0, 1.0, 1.0, 1.0])
    # |0.9/1.0| > 0.5 significant; |0.1/1.0| not.
    out = filt.step(p, update_with([0, 1], [0.9, 0.1]), t=1)
    assert list(out["w"].indices) == [0]
    acc = filt.accumulated["w"]
    assert acc[0] == 0.0 and acc[1] == pytest.approx(0.1)


def test_accumulation_until_significant():
    filt = SignificanceFilter(0.5, {"w": (1,)})
    p = params_with([1.0])
    for t in range(1, 4):
        out = filt.step(p, update_with([0], [0.2], size=1), t=t)
        if out["w"].nnz:
            break
    # Accumulated 0.2 * k eventually crosses v_t = 0.5/sqrt(t).
    assert out["w"].nnz == 1
    # The extracted value carries the FULL accumulated history.
    assert out["w"].values[0] == pytest.approx(0.2 * t)


def test_conservation_extracted_plus_residual_equals_added():
    rng = np.random.default_rng(0)
    filt = SignificanceFilter(0.7, {"w": (50,)})
    p = params_with(rng.normal(size=50))
    total = np.zeros(50)
    extracted = np.zeros(50)
    for t in range(1, 20):
        dense = rng.normal(size=50) * (rng.random(50) < 0.3) * 0.05
        total += dense
        out = filt.step(p, ModelUpdate({"w": SparseDelta.from_dense(dense)}), t)
        out["w"].apply_to(extracted)
    np.testing.assert_allclose(extracted + filt.accumulated["w"], total, atol=1e-12)


def test_relative_test_uses_current_parameter_magnitude():
    filt = SignificanceFilter(0.5, {"w": (2,)})
    # Same absolute update: significant vs tiny parameter, not vs large one.
    p = params_with([0.01, 100.0])
    out = filt.step(p, update_with([0, 1], [0.05, 0.05], size=2), t=1)
    assert list(out["w"].indices) == [0]


def test_decaying_threshold_makes_filter_stricter_early():
    # The same relative update passes at a late step but not at step 1.
    filt = SignificanceFilter(0.5, {"w": (1,)})
    p = params_with([1.0])
    early = filt.step(p, update_with([0], [0.3], size=1), t=1)
    assert early["w"].nnz == 0
    filt2 = SignificanceFilter(0.5, {"w": (1,)})
    late = filt2.step(p, update_with([0], [0.3], size=1), t=100)
    assert late["w"].nnz == 1


def test_residual_update_reports_whole_accumulator():
    filt = SignificanceFilter(0.9, {"w": (3,)})
    p = params_with([10.0, 10.0, 10.0])
    filt.step(p, update_with([0, 1], [0.01, 0.02], size=3), t=1)
    residual = filt.residual_update()
    np.testing.assert_allclose(residual["w"].to_dense(), [0.01, 0.02, 0.0])


def test_multiple_tensors_filtered_independently():
    filt = SignificanceFilter(0.5, {"a": (1,), "b": (1,)})
    p = ParameterSet({"a": np.array([1.0]), "b": np.array([1.0])})
    update = ModelUpdate(
        {
            "a": SparseDelta(np.array([0]), np.array([0.9]), (1,)),
            "b": SparseDelta(np.array([0]), np.array([0.1]), (1,)),
        }
    )
    out = filt.step(p, update, t=1)
    assert out["a"].nnz == 1 and out["b"].nnz == 0


def test_unknown_tensor_rejected():
    filt = SignificanceFilter(0.5, {"w": (2,)})
    with pytest.raises(KeyError):
        filt.add(update_with([0], [1.0], size=2).merge(
            ModelUpdate({"zz": SparseDelta.empty((2,))})
        ))


def test_negative_v_rejected():
    with pytest.raises(ValueError):
        SignificanceFilter(-0.1, {"w": (2,)})


def test_zero_parameter_guard_no_division_error():
    filt = SignificanceFilter(0.5, {"w": (1,)})
    p = params_with([0.0])
    out = filt.step(p, update_with([0], [1e-3], size=1), t=1)
    # |1e-3 / ~0| is huge -> significant despite zero parameter.
    assert out["w"].nnz == 1
