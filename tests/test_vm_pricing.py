"""Unit tests for the VM substrate, collectives, and pricing/metering."""

import pytest

from repro.pricing import (
    FUNCTIONS_PRICE_PER_S,
    PRICING,
    CostMeter,
    VMLease,
    vm_price_per_second,
)
from repro.sim import Environment, RandomStreams
from repro.vm import (
    VMCluster,
    VMInstance,
    broadcast_time,
    ring_allreduce_time,
    tree_allreduce_time,
)


# ----------------------------------------------------------------- pricing
def test_table2_catalog_values():
    assert PRICING["C1.4x4"].price_per_hour == 0.15
    assert PRICING["M1.2x16"].price_per_hour == 0.17
    assert PRICING["B1.4x8"].price_per_hour == 0.20
    assert FUNCTIONS_PRICE_PER_S == 3.4e-5


def test_table2_shapes():
    assert (PRICING["C1.4x4"].vcpus, PRICING["C1.4x4"].memory_gb) == (4, 4)
    assert (PRICING["M1.2x16"].vcpus, PRICING["M1.2x16"].memory_gb) == (2, 16)
    assert (PRICING["B1.4x8"].vcpus, PRICING["B1.4x8"].memory_gb) == (4, 8)


def test_price_per_second_conversion():
    assert vm_price_per_second("B1.4x8") == pytest.approx(0.20 / 3600)


def test_all_instances_have_1gbps_nic():
    assert all(t.nic_bps == 1e9 for t in PRICING.values())


def test_lease_cost_accrues_with_time():
    lease = VMLease(PRICING["B1.4x8"], start=100.0)
    assert lease.cost_up_to(50.0) == 0.0
    assert lease.cost_up_to(100.0) == 0.0
    assert lease.cost_up_to(3700.0) == pytest.approx(0.20)


def test_lease_cost_stops_at_end():
    lease = VMLease(PRICING["B1.4x8"], start=0.0, end=3600.0)
    assert lease.cost() == pytest.approx(0.20)
    assert lease.cost_up_to(10_000.0) == pytest.approx(0.20)


def test_open_lease_cost_requires_time():
    lease = VMLease(PRICING["B1.4x8"], start=0.0)
    with pytest.raises(ValueError):
        lease.cost()


def test_meter_lease_release_and_breakdown():
    meter = CostMeter()
    lease = meter.lease("M1.2x16", start=0.0)
    meter.release(lease, 3600.0)
    assert meter.total_cost() == pytest.approx(0.17)
    assert meter.breakdown() == {"M1.2x16": pytest.approx(0.17)}


def test_meter_release_validations():
    meter = CostMeter()
    lease = meter.lease("M1.2x16", start=10.0)
    with pytest.raises(ValueError):
        meter.release(lease, 5.0)
    meter.release(lease, 20.0)
    with pytest.raises(ValueError):
        meter.release(lease, 30.0)


def test_meter_close_all():
    meter = CostMeter()
    meter.lease("B1.4x8", start=0.0)
    meter.lease("B1.4x8", start=0.0)
    meter.close_all(1800.0)
    assert meter.total_cost() == pytest.approx(2 * 0.10)


# -------------------------------------------------------------- collectives
def test_ring_allreduce_single_node_free():
    assert ring_allreduce_time(1e6, 1, 1e9) == 0.0


def test_ring_allreduce_formula():
    # 2 (P-1) (alpha + S/(P B))
    size, nodes, bw, alpha = 8e6, 4, 1e9, 1e-4
    expected = 2 * 3 * (alpha + (size / 4 * 8) / bw)
    assert ring_allreduce_time(size, nodes, bw, alpha) == pytest.approx(expected)


def test_ring_bandwidth_term_shrinks_with_nodes():
    # Bandwidth-optimal: per-node bytes ~ 2S(P-1)/P approaches 2S.
    t4 = ring_allreduce_time(1e8, 4, 1e9, 0.0)
    t64 = ring_allreduce_time(1e8, 64, 1e9, 0.0)
    assert t64 / t4 == pytest.approx((2 * 63 / 64) / (2 * 3 / 4), rel=1e-6)


def test_tree_allreduce_log_steps():
    size, bw, alpha = 1e6, 1e9, 1e-4
    t8 = tree_allreduce_time(size, 8, bw, alpha)
    expected = 2 * 3 * (alpha + size * 8 / bw)
    assert t8 == pytest.approx(expected)


def test_tree_slower_than_ring_for_large_buffers():
    assert tree_allreduce_time(1e8, 16, 1e9) > ring_allreduce_time(1e8, 16, 1e9)


def test_broadcast_time_formula():
    assert broadcast_time(1e6, 1, 1e9) == 0.0
    t = broadcast_time(1e6, 8, 1e9, 1e-4)
    assert t == pytest.approx(3 * (1e-4 + 8e6 / 1e9))


def test_collective_validation():
    with pytest.raises(ValueError):
        ring_allreduce_time(-1, 2, 1e9)
    with pytest.raises(ValueError):
        ring_allreduce_time(1, 0, 1e9)
    with pytest.raises(ValueError):
        ring_allreduce_time(1, 2, 0)


# -------------------------------------------------------------- VM instance
def test_vm_boot_takes_time():
    env = Environment()
    streams = RandomStreams(seed=0)
    vm = VMInstance(env, streams, "B1.4x8", "vm-0")
    assert not vm.is_up
    env.process(vm.boot())
    env.run()
    assert vm.is_up
    assert 30 < env.now < 200  # ~75 s median


def test_vm_unknown_type_rejected():
    env = Environment()
    with pytest.raises(KeyError):
        VMInstance(env, RandomStreams(0), "Z9.turbo", "vm-0")


def test_vm_compute_multicore_speedup():
    env = Environment()
    vm = VMInstance(env, RandomStreams(0), "B1.4x8", "vm-0")

    def proc():
        start = env.now
        yield from vm.compute(1.0, threads=1)
        single = env.now - start
        start = env.now
        yield from vm.compute(1.0, threads=4)
        multi = env.now - start
        return single, multi

    p = env.process(proc())
    env.run()
    single, multi = p.value
    assert single == pytest.approx(1.0)
    assert multi == pytest.approx(1.0 / (4 * 0.85))


def test_vm_compute_thread_count_capped_at_vcpus():
    env = Environment()
    vm = VMInstance(env, RandomStreams(0), "B1.4x8", "vm-0")

    def proc():
        start = env.now
        yield from vm.compute(1.0, threads=100)
        return env.now - start

    p = env.process(proc())
    env.run()
    assert p.value == pytest.approx(1.0 / (4 * 0.85))


# --------------------------------------------------------------- VM cluster
def test_cluster_boot_opens_leases_and_shutdown_closes():
    env = Environment()
    meter = CostMeter()
    cluster = VMCluster(env, RandomStreams(0), "B1.4x8", 3, meter=meter)

    def proc():
        yield from cluster.boot()
        yield env.timeout(3600)
        cluster.shutdown()

    env.process(proc())
    env.run()
    assert cluster.boot_duration is not None and cluster.boot_duration > 30
    # 3 instances, leased from boot start to shutdown.
    expected = 3 * (cluster.boot_duration + 3600) * 0.20 / 3600
    assert meter.total_cost() == pytest.approx(expected, rel=1e-6)


def test_cluster_allreduce_advances_clock():
    env = Environment()
    cluster = VMCluster(env, RandomStreams(0), "B1.4x8", 4)

    def proc():
        yield from cluster.boot()
        before = env.now
        yield from cluster.allreduce(10e6)
        return env.now - before

    p = env.process(proc())
    env.run()
    expected = ring_allreduce_time(10e6, 4, 1e9)
    assert p.value == pytest.approx(expected)


def test_cluster_validates_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        VMCluster(env, RandomStreams(0), "B1.4x8", 0)
    with pytest.raises(ValueError):
        VMCluster(env, RandomStreams(0), "B1.4x8", 2, collective="star")


def test_cluster_total_vcpus():
    env = Environment()
    cluster = VMCluster(env, RandomStreams(0), "B1.4x8", 6)
    assert cluster.total_vcpus == 24
