"""Unit tests for the control-message schema and RunResult metrics."""

import pytest

from repro.core import RunResult, perf_per_dollar
from repro.core import messages
from repro.pricing import CostMeter
from repro.sim import Monitor


# ---------------------------------------------------------------- messages
def test_step_done_schema():
    msg = messages.step_done(3, 7, 0.5, True, 120)
    assert messages.validate(msg) == messages.STEP_DONE
    assert msg["worker"] == 3 and msg["step"] == 7
    assert msg["has_update"] is True and msg["update_nnz"] == 120


def test_step_complete_schema():
    msg = messages.step_complete(7, False, [0, 2], active=5, evict=2)
    assert messages.validate(msg) == messages.STEP_COMPLETE
    assert msg["evict"] == 2 and msg["active"] == 5
    none_evict = messages.step_complete(7, True, [], active=5)
    assert none_evict["evict"] is None


def test_departed_schema():
    msg = messages.departed(1, 9, "departed/9/1")
    assert messages.validate(msg) == messages.DEPARTED


def test_validate_rejects_unknown_and_malformed():
    with pytest.raises(ValueError):
        messages.validate({"type": "gossip"})
    with pytest.raises(ValueError):
        messages.validate({"no_type": 1})
    with pytest.raises(ValueError):
        messages.validate("not a dict")
    incomplete = messages.step_done(0, 1, 0.1, False, 0)
    del incomplete["loss"]
    with pytest.raises(ValueError):
        messages.validate(incomplete)


# --------------------------------------------------------------- RunResult
def make_result():
    monitor = Monitor()
    meter = CostMeter()
    lease = meter.lease("B1.4x8", start=0.0)
    # Loss decays from 1.0 to 0.4 over 100 s.
    for i in range(11):
        t = 10.0 * i
        monitor.record("loss", t, 1.0 - 0.06 * i)
        if i:
            monitor.record("step_duration", i, 10.0)
        monitor.record("loss_by_step", i + 1, 1.0 - 0.06 * i)
    monitor.record("workers", 0.0, 8)
    monitor.record("workers", 50.0, 6)
    meter.release(lease, 100.0)
    return RunResult(
        system="test",
        monitor=monitor,
        meter=meter,
        started_at=0.0,
        finished_at=100.0,
        setup_duration=30.0,
        converged=True,
        final_loss=0.4,
        total_steps=11,
    )


def test_exec_and_wall_time():
    r = make_result()
    assert r.exec_time == 100.0
    assert r.wall_time == 130.0


def test_total_cost_and_cost_at():
    r = make_result()
    full = 100.0 * 0.20 / 3600
    assert r.total_cost == pytest.approx(full)
    assert r.cost_at(50.0) == pytest.approx(full / 2)


def test_perf_per_dollar_metric():
    r = make_result()
    assert r.perf_per_dollar == pytest.approx(1.0 / (100.0 * r.total_cost))
    with pytest.raises(ValueError):
        perf_per_dollar(0.0, 1.0)
    with pytest.raises(ValueError):
        perf_per_dollar(1.0, -1.0)


def test_time_and_cost_to_loss():
    r = make_result()
    assert r.time_to_loss(0.7) == pytest.approx(50.0)
    assert r.time_to_loss(0.0) is None
    assert r.cost_to_loss(0.7) == pytest.approx(r.cost_at(50.0))
    assert r.cost_to_loss(-1.0) is None


def test_best_loss_within_budget():
    r = make_result()
    half_budget = r.total_cost / 2
    best = r.best_loss_within_budget(half_budget)
    assert best == pytest.approx(0.7)
    assert r.best_loss_within_budget(1e9) == pytest.approx(0.4)
    assert r.best_loss_within_budget(0.0) is None


def test_time_within_budget():
    r = make_result()
    half = r.time_within_budget(r.total_cost / 2)
    assert half == pytest.approx(50.0, abs=0.5)
    # Budget above total cost extrapolates at the average burn rate.
    double = r.time_within_budget(r.total_cost * 2)
    assert double == pytest.approx(200.0, rel=0.01)
    assert r.time_within_budget(0.0) == 0.0


def test_worker_and_step_queries():
    r = make_result()
    assert r.final_worker_count() == 6
    assert r.mean_step_duration() == pytest.approx(10.0)
    assert r.steps_per_second() == pytest.approx(0.1)


def test_summary_fields():
    s = make_result().summary()
    assert s["system"] == "test"
    assert s["converged"] is True
    assert s["final_workers"] == 6
